//===- tools/isq-loadgen.cpp - isq-serve load generator ------------------------------===//
///
/// \file
/// The load generator for the verification service: replays a manifest of
/// ASL verification jobs against a running isq-serve daemon from N
/// concurrent client connections and reports latency percentiles
/// (p50/p95/p99), throughput, and cache-hit rate — optionally as a JSON
/// row for BENCH_serve.json (tools/bench_serve.sh).
///
/// Manifest format: one job per line, `path/to/module.asl <isq-verify
/// flags>` (paths relative to the manifest file); blank lines and
/// #-comments are skipped. Each line is parsed with the isq-verify
/// command-line parser, so manifests use the exact flags documented in
/// the example headers.
///
/// Admission-control rejections (REJECTED_BUSY) are retried with a short
/// backoff up to --max-retries and counted — overload shows up in the
/// report instead of failing the run. With --check-identical, all
/// verdicts of one manifest entry must agree after timing fields are
/// scrubbed (the determinism acceptance check).
///
/// Exit codes: 0 every submission got a verdict (and identity held),
/// 1 some submission failed or verdicts diverged, 2 usage/connect error.
///
//===----------------------------------------------------------------------===//

#include "driver/CliOptions.h"
#include "serve/Client.h"
#include "support/Json.h"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <regex>
#include <sstream>
#include <thread>
#include <vector>

using namespace isq;
using namespace isq::serve;

namespace {

const char *usageText() {
  return "usage: isq-loadgen --port N --manifest FILE [options]\n"
         "\n"
         "Replays the manifest's verification jobs against a running\n"
         "isq-serve from concurrent client connections and reports\n"
         "latency percentiles, throughput, and cache-hit rate.\n"
         "\n"
         "options:\n"
         "  --host H            server address (default 127.0.0.1)\n"
         "  --port N            server port\n"
         "  --port-file F       read the port from file F (isq-serve\n"
         "                      --port-file counterpart)\n"
         "  --manifest FILE     job manifest: `module.asl FLAGS` lines\n"
         "  --clients N         concurrent connections (default 1)\n"
         "  --repeats N         passes over the manifest per client\n"
         "                      (default 1)\n"
         "  --max-retries N     retries per REJECTED_BUSY (default 200)\n"
         "  --check-identical   require all verdicts of one entry to be\n"
         "                      identical after scrubbing timings\n"
         "  --dump-dir DIR      write one verdict JSON per entry\n"
         "  --json-out FILE     write the aggregate report as JSON\n"
         "  --stats             print server STATS counters at the end\n"
         "  --help, -h          show this help\n"
         "\n"
         "exit codes:\n"
         "  0  all submissions answered (identity held if requested)\n"
         "  1  submission failed, retries exhausted, or verdicts diverged\n"
         "  2  usage, manifest, or connection error\n";
}

template <typename T> bool parseNumber(const std::string &S, T &Out) {
  const char *First = S.data();
  const char *Last = S.data() + S.size();
  auto [Ptr, Ec] = std::from_chars(First, Last, Out);
  return Ec == std::errc() && Ptr == Last && !S.empty();
}

struct ManifestEntry {
  std::string Label; ///< the manifest line's module path
  SubmitRequest Request;
};

/// Parses one manifest line with the isq-verify CLI parser and loads the
/// module source. Returns false with \p Error set on any problem.
bool parseManifestLine(const std::string &Line, const std::string &BaseDir,
                       ManifestEntry &Out, std::string &Error) {
  std::vector<std::string> Tokens;
  std::stringstream Stream(Line);
  std::string Token;
  while (Stream >> Token)
    Tokens.push_back(Token);
  driver::CliParse Parse = driver::parseCommandLine(Tokens);
  if (!Parse.Ok) {
    Error = Parse.Error;
    return false;
  }
  std::string Path = Parse.Options.InputPath;
  if (!Path.empty() && Path[0] != '/')
    Path = BaseDir + "/" + Path;
  std::ifstream In(Path);
  if (!In) {
    Error = "cannot open '" + Path + "'";
    return false;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  Parse.Options.Verify.Source = Buffer.str();
  Out.Label = Parse.Options.InputPath;
  Out.Request = fromVerifyOptions(Parse.Options.Verify);
  return true;
}

/// One completed submission.
struct Sample {
  size_t Entry = 0;
  double Seconds = 0;
  bool CacheHit = false;
  uint8_t ExitCode = 0;
  uint32_t BusyRetries = 0;
  std::string ReportJson;
};

/// Zeroes timing fields so verdicts compare reproducibly (same scrub as
/// the golden tests in tests/cli_test.cpp).
std::string scrubTimings(const std::string &Json) {
  static const std::regex Seconds("(\"[a-z_]*seconds\":)[0-9.]+");
  return std::regex_replace(Json, Seconds, "$010");
}

/// Nearest-rank percentile of an ascending-sorted sample vector.
double percentile(const std::vector<double> &Sorted, double Q) {
  if (Sorted.empty())
    return 0;
  size_t Rank = static_cast<size_t>(Q * static_cast<double>(Sorted.size()));
  return Sorted[std::min(Rank, Sorted.size() - 1)];
}

/// Pulls one integer counter out of a verdict report by key. The report
/// keys this reads ("cache_hits", "cache_misses", "disk_hits" — only the
/// top-level "obligations" object spells them without a prefix) are part
/// of the versioned JSON schema, so a regex is enough; a missing key
/// (older server) reads as 0.
uint64_t extractCounter(const std::string &Json, const std::string &Key) {
  std::regex Re("\"" + Key + "\":([0-9]+)");
  std::smatch M;
  if (std::regex_search(Json, M, Re))
    return std::stoull(M[1]);
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  std::vector<std::string> Args(argv + 1, argv + argc);
  std::string Host = "127.0.0.1";
  std::string PortFile, ManifestPath, DumpDir, JsonOut;
  uint16_t Port = 0;
  unsigned Clients = 1, Repeats = 1, MaxRetries = 200;
  bool CheckIdentical = false, PrintStats = false;

  for (size_t I = 0; I < Args.size(); ++I) {
    const std::string &Arg = Args[I];
    if (Arg == "--help" || Arg == "-h") {
      std::printf("%s", usageText());
      return 0;
    }
    if (Arg == "--check-identical") {
      CheckIdentical = true;
      continue;
    }
    if (Arg == "--stats") {
      PrintStats = true;
      continue;
    }
    if (I + 1 >= Args.size()) {
      std::fprintf(stderr, "error: %s needs a value\n%s", Arg.c_str(),
                   usageText());
      return 2;
    }
    std::string Value = Args[++I];
    if (Arg == "--host") {
      Host = Value;
    } else if (Arg == "--port") {
      unsigned N = 0;
      if (!parseNumber(Value, N) || N < 1 || N > 65535) {
        std::fprintf(stderr, "error: --port expects a port number\n");
        return 2;
      }
      Port = static_cast<uint16_t>(N);
    } else if (Arg == "--port-file") {
      PortFile = Value;
    } else if (Arg == "--manifest") {
      ManifestPath = Value;
    } else if (Arg == "--clients" || Arg == "--repeats" ||
               Arg == "--max-retries") {
      unsigned N = 0;
      if (!parseNumber(Value, N) || (Arg != "--max-retries" && N < 1)) {
        std::fprintf(stderr, "error: %s expects a positive integer\n",
                     Arg.c_str());
        return 2;
      }
      (Arg == "--clients" ? Clients
                          : Arg == "--repeats" ? Repeats : MaxRetries) = N;
    } else if (Arg == "--dump-dir") {
      DumpDir = Value;
    } else if (Arg == "--json-out") {
      JsonOut = Value;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n%s", Arg.c_str(),
                   usageText());
      return 2;
    }
  }

  if (!PortFile.empty()) {
    std::ifstream In(PortFile);
    unsigned N = 0;
    if (!(In >> N) || N < 1 || N > 65535) {
      std::fprintf(stderr, "error: cannot read port from '%s'\n",
                   PortFile.c_str());
      return 2;
    }
    Port = static_cast<uint16_t>(N);
  }
  if (Port == 0 || ManifestPath.empty()) {
    std::fprintf(stderr, "error: --port and --manifest are required\n%s",
                 usageText());
    return 2;
  }

  // Load the manifest.
  std::ifstream Manifest(ManifestPath);
  if (!Manifest) {
    std::fprintf(stderr, "error: cannot open manifest '%s'\n",
                 ManifestPath.c_str());
    return 2;
  }
  std::string BaseDir = ".";
  if (size_t Slash = ManifestPath.rfind('/'); Slash != std::string::npos)
    BaseDir = ManifestPath.substr(0, Slash);
  std::vector<ManifestEntry> Entries;
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(Manifest, Line)) {
    ++LineNo;
    size_t First = Line.find_first_not_of(" \t\r");
    if (First == std::string::npos || Line[First] == '#')
      continue;
    ManifestEntry Entry;
    std::string Error;
    if (!parseManifestLine(Line, BaseDir, Entry, Error)) {
      std::fprintf(stderr, "error: %s:%zu: %s\n", ManifestPath.c_str(),
                   LineNo, Error.c_str());
      return 2;
    }
    Entries.push_back(std::move(Entry));
  }
  if (Entries.empty()) {
    std::fprintf(stderr, "error: manifest '%s' has no jobs\n",
                 ManifestPath.c_str());
    return 2;
  }

  // Fire the client fleet. Each client owns one connection and replays
  // the whole manifest --repeats times; request ids encode (client,
  // submission) for debuggability.
  std::mutex ResultMutex;
  std::vector<Sample> Samples;
  std::vector<std::string> Failures;
  std::atomic<uint64_t> TotalBusyRetries{0};

  auto Wall = std::chrono::steady_clock::now();
  std::vector<std::thread> Fleet;
  for (unsigned C = 0; C < Clients; ++C) {
    Fleet.emplace_back([&, C] {
      ServeClient Client;
      std::string Error;
      if (!Client.connect(Host, Port, Error)) {
        std::lock_guard<std::mutex> Lock(ResultMutex);
        Failures.push_back("client " + std::to_string(C) + ": " + Error);
        return;
      }
      uint64_t NextId = static_cast<uint64_t>(C) << 32;
      for (unsigned R = 0; R < Repeats; ++R) {
        for (size_t E = 0; E < Entries.size(); ++E) {
          SubmitRequest Request = Entries[E].Request;
          Request.RequestId = ++NextId;
          Sample S;
          S.Entry = E;
          auto Begin = std::chrono::steady_clock::now();
          ServeReply Reply;
          for (unsigned Attempt = 0;; ++Attempt) {
            Reply = Client.submit(Request);
            if (Reply.K != ServeReply::Kind::Busy)
              break;
            if (Attempt >= MaxRetries) {
              Reply.K = ServeReply::Kind::Disconnected;
              Reply.Error = "REJECTED_BUSY after " +
                            std::to_string(MaxRetries) + " retries";
              break;
            }
            ++S.BusyRetries;
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
          }
          S.Seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - Begin)
                          .count();
          TotalBusyRetries += S.BusyRetries;
          if (Reply.K != ServeReply::Kind::Verdict) {
            std::lock_guard<std::mutex> Lock(ResultMutex);
            Failures.push_back("client " + std::to_string(C) + " entry " +
                               Entries[E].Label + ": " + Reply.Error);
            return;
          }
          S.CacheHit = Reply.Verdict.CacheHit;
          S.ExitCode = Reply.Verdict.ExitCode;
          S.ReportJson = std::move(Reply.Verdict.ReportJson);
          std::lock_guard<std::mutex> Lock(ResultMutex);
          Samples.push_back(std::move(S));
        }
      }
    });
  }
  for (std::thread &T : Fleet)
    T.join();
  double WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Wall)
          .count();

  int Exit = 0;
  for (const std::string &F : Failures) {
    std::fprintf(stderr, "FAIL: %s\n", F.c_str());
    Exit = 1;
  }

  // Determinism check: every verdict of one entry must agree modulo
  // timing fields (cache hits are byte-identical even before scrubbing).
  if (CheckIdentical) {
    for (size_t E = 0; E < Entries.size(); ++E) {
      std::string Reference;
      for (const Sample &S : Samples) {
        if (S.Entry != E)
          continue;
        std::string Scrubbed = scrubTimings(S.ReportJson);
        if (Reference.empty()) {
          Reference = std::move(Scrubbed);
        } else if (Scrubbed != Reference) {
          std::fprintf(stderr,
                       "FAIL: verdicts diverge for entry %s (scrubbed)\n",
                       Entries[E].Label.c_str());
          Exit = 1;
          break;
        }
      }
    }
  }

  // Dump one representative verdict per entry (for external comparison
  // against one-shot isq-verify).
  if (!DumpDir.empty()) {
    for (size_t E = 0; E < Entries.size(); ++E) {
      auto It = std::find_if(Samples.begin(), Samples.end(),
                             [E](const Sample &S) { return S.Entry == E; });
      if (It == Samples.end())
        continue;
      std::string Path = DumpDir + "/entry" + std::to_string(E) + ".json";
      std::ofstream Out(Path);
      Out << It->ReportJson;
      if (!Out) {
        std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
        Exit = Exit ? Exit : 1;
      }
    }
  }

  // Aggregate. The obligation-level counters come out of each verdict's
  // report: requests that miss the whole-request verdict cache still hit
  // the server's shared obligation cache, and that reuse is invisible in
  // the request-level hit rate.
  std::vector<double> LatenciesMs;
  size_t Hits = 0, NonZeroExits = 0;
  uint64_t ObHits = 0, ObMisses = 0, ObDiskHits = 0;
  for (const Sample &S : Samples) {
    LatenciesMs.push_back(S.Seconds * 1000.0);
    Hits += S.CacheHit ? 1 : 0;
    NonZeroExits += S.ExitCode != 0 ? 1 : 0;
    ObHits += extractCounter(S.ReportJson, "cache_hits");
    ObMisses += extractCounter(S.ReportJson, "cache_misses");
    ObDiskHits += extractCounter(S.ReportJson, "disk_hits");
  }
  std::sort(LatenciesMs.begin(), LatenciesMs.end());
  double P50 = percentile(LatenciesMs, 0.50);
  double P95 = percentile(LatenciesMs, 0.95);
  double P99 = percentile(LatenciesMs, 0.99);
  double HitRate =
      Samples.empty() ? 0 : static_cast<double>(Hits) / Samples.size();
  double Throughput =
      WallSeconds > 0 ? static_cast<double>(Samples.size()) / WallSeconds : 0;

  std::printf("isq-loadgen: %u client(s) x %u repeat(s) x %zu entr%s\n",
              Clients, Repeats, Entries.size(),
              Entries.size() == 1 ? "y" : "ies");
  std::printf("  submissions   %zu (%zu failed, %zu non-zero exits)\n",
              Samples.size() + Failures.size(), Failures.size(),
              NonZeroExits);
  std::printf("  wall          %.3f s  (%.2f jobs/s)\n", WallSeconds,
              Throughput);
  std::printf("  latency ms    p50 %.2f  p95 %.2f  p99 %.2f\n", P50, P95,
              P99);
  std::printf("  cache hits    %zu/%zu (%.1f%%)\n", Hits, Samples.size(),
              HitRate * 100.0);
  double ObHitRate = ObHits + ObMisses
                         ? static_cast<double>(ObHits) /
                               static_cast<double>(ObHits + ObMisses)
                         : 0;
  std::printf("  obligations   hits %llu  misses %llu  (%.1f%%)  disk %llu\n",
              static_cast<unsigned long long>(ObHits),
              static_cast<unsigned long long>(ObMisses), ObHitRate * 100.0,
              static_cast<unsigned long long>(ObDiskHits));
  std::printf("  busy retries  %llu\n",
              static_cast<unsigned long long>(TotalBusyRetries.load()));

  if (PrintStats) {
    ServeClient Client;
    std::string Error;
    if (Client.connect(Host, Port, Error)) {
      ServeReply Reply = Client.stats();
      if (Reply.K == ServeReply::Kind::Stats) {
        const ServeStats &St = Reply.Stats.Stats;
        std::printf("  server stats  accepted %llu rejected %llu "
                    "completed %llu coalesced %llu hits %llu misses %llu "
                    "evictions %llu queue %llu frames-rejected %llu\n",
                    static_cast<unsigned long long>(St.JobsAccepted),
                    static_cast<unsigned long long>(St.JobsRejected),
                    static_cast<unsigned long long>(St.JobsCompleted),
                    static_cast<unsigned long long>(St.JobsCoalesced),
                    static_cast<unsigned long long>(St.CacheHits),
                    static_cast<unsigned long long>(St.CacheMisses),
                    static_cast<unsigned long long>(St.CacheEvictions),
                    static_cast<unsigned long long>(St.QueueDepth),
                    static_cast<unsigned long long>(St.FramesRejected));
      }
    }
  }

  if (!JsonOut.empty()) {
    json::JsonWriter W;
    W.beginObject();
    W.key("tool").value("isq-loadgen");
    W.key("clients").value(Clients);
    W.key("repeats").value(Repeats);
    W.key("entries").value(static_cast<uint64_t>(Entries.size()));
    W.key("submissions").value(static_cast<uint64_t>(Samples.size()));
    W.key("failures").value(static_cast<uint64_t>(Failures.size()));
    W.key("wall_seconds").value(WallSeconds);
    W.key("throughput_rps").value(Throughput);
    W.key("p50_ms").value(P50);
    W.key("p95_ms").value(P95);
    W.key("p99_ms").value(P99);
    W.key("cache_hit_rate").value(HitRate);
    W.key("cache_hits").value(static_cast<uint64_t>(Hits));
    W.key("obligation_cache_hits").value(ObHits);
    W.key("obligation_cache_misses").value(ObMisses);
    W.key("obligation_disk_hits").value(ObDiskHits);
    W.key("obligation_hit_rate").value(ObHitRate);
    W.key("busy_retries").value(TotalBusyRetries.load());
    W.key("non_zero_exits").value(static_cast<uint64_t>(NonZeroExits));
    // Echo the resolved engine configuration the jobs ran under (the
    // wire-form non-default map of the first manifest entry), so a bench
    // row is self-describing — without it, rows from different --engine
    // manifests are indistinguishable.
    W.key("engine").beginObject();
    if (!Entries.empty())
      for (const auto &[Key, Val] : Entries.front().Request.Engine)
        W.key(Key).value(Val);
    W.endObject();
    W.endObject();
    std::ofstream Out(JsonOut);
    Out << W.take() << "\n";
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", JsonOut.c_str());
      return 2;
    }
  }
  return Exit;
}
