#!/usr/bin/env bash
# Benchmarks incremental re-verification: for each instance, a cold run
# populating an on-disk obligation verdict cache, a warm run over the
# unchanged module, and a warm run after a one-action edit (a loop peel —
# behaviorally equivalent but not optimizer-foldable, so exactly one
# action's fingerprint moves). Rows are merged into BENCH_engine.json
# under an "incremental" key, next to the exploration/checker rows that
# bench_engine.sh records.
#
# Instances: Paxos at R=2 over 2 and 3 acceptors, and two-phase commit —
# the same protocols the checker-phase benchmarks cover. All runs are
# single-threaded with --no-cross-check (the empirical cross-check is an
# uncached exploration; including it would dilute the measurement with
# work the cache deliberately does not touch). Each cell is the median
# of three runs; cold repeats start from a fresh directory, edit repeats
# from a copy of the pristine cold cache.
#
# The recording fails — instead of committing misleading numbers — if
# the headline row (Paxos R=2 N=3) re-discharges ≥30% of its obligations
# after the edit or speeds up less than 3x over cold.
#
# Numbers are recorded from a dedicated Release build directory
# (build-bench, configured here on first use): recording from a
# RelWithDebInfo or Debug tree is refused, and the merged JSON embeds the
# build type and git revision so a committed BENCH_engine.json is
# self-describing.
#
# Usage: tools/bench_incremental.sh [BUILD_DIR] [OUT_JSON]

set -euo pipefail

BUILD="${1:-build-bench}"
OUT="${2:-BENCH_engine.json}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

if [ ! -f "$BUILD/CMakeCache.txt" ]; then
  cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release
fi

BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD/CMakeCache.txt")"
if [ "$BUILD_TYPE" != "Release" ]; then
  echo "error: $BUILD is a '$BUILD_TYPE' tree; benchmarks must be recorded" >&2
  echo "from a Release build (rerun without arguments, or point BUILD_DIR" >&2
  echo "at a -DCMAKE_BUILD_TYPE=Release configuration)." >&2
  exit 1
fi

GIT_SHA="$(git -C "$ROOT" rev-parse --short HEAD 2>/dev/null || echo unknown)"

cmake --build "$BUILD" -j --target isq-verify

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

python3 - "$BUILD/tools/isq-verify" "$TMP" "$OUT" "$BUILD_TYPE" \
  "$GIT_SHA" <<'EOF'
import json, os, shutil, statistics, subprocess, sys, time

verify, tmp, out, build_type, git_sha = sys.argv[1:]
REPEATS = 3

PAXOS_EDIT = (
    """action Main() {
  for r in 1 .. R {
    async StartRound(r);
  }
}""",
    """action Main() {
  async StartRound(1);
  for r in 2 .. R {
    async StartRound(r);
  }
}""",
)
TPC_EDIT = (
    """action RequestVotes() {
  for i in 1 .. n {
    reqCh[i] := insert(reqCh[i], 1);
    async Vote(i);
  }""",
    """action RequestVotes() {
  reqCh[1] := insert(reqCh[1], 1);
  async Vote(1);
  for i in 2 .. n {
    reqCh[i] := insert(reqCh[i], 1);
    async Vote(i);
  }""",
)

PAXOS_COMMON = [
    "--arg-major",
    "--eliminate", "StartRound,Join,Propose,Vote,Conclude",
    "--abstract", "Join=JoinAbs", "--abstract", "Propose=ProposeAbs",
    "--abstract", "Vote=VoteAbs", "--abstract", "Conclude=ConcludeAbs",
]
INSTANCES = [
    {"name": "paxos_R2_N2", "file": "examples/asl/paxos.asl",
     "edited_action": "Main", "edit": PAXOS_EDIT,
     "flags": ["--param", "R=2", "--param", "N=2", *PAXOS_COMMON,
               "--weight", "StartRound=9", "--weight", "Propose=5",
               "--weight", "Conclude=2"]},
    {"name": "paxos_R2_N3", "file": "examples/asl/paxos.asl",
     "edited_action": "Main", "edit": PAXOS_EDIT,
     "flags": ["--param", "R=2", "--param", "N=3", *PAXOS_COMMON,
               "--weight", "StartRound=11", "--weight", "Propose=6",
               "--weight", "Conclude=2"]},
    {"name": "two_phase_commit_n3", "file": "examples/asl/two_phase_commit.asl",
     "edited_action": "RequestVotes", "edit": TPC_EDIT,
     "flags": ["--param", "n=3",
               "--eliminate", "RequestVotes,Vote,Decide,Finalize",
               "--abstract", "Decide=DecideAbs",
               "--weight", "RequestVotes=8", "--weight", "Decide=4"]},
]


def run(module, flags, cache_dir):
    cmd = [verify, module, *flags, "--no-cross-check",
           "--engine", "cache-dir=" + cache_dir, "--format", "json"]
    start = time.monotonic()
    proc = subprocess.run(cmd, capture_output=True, text=True)
    seconds = time.monotonic() - start
    if proc.returncode != 0:
        sys.exit(f"error: {' '.join(cmd)} exited {proc.returncode}:\n"
                 f"{proc.stderr}")
    doc = json.loads(proc.stdout)
    assert doc["accepted"] is True, cmd
    ob = doc["obligations"]
    assert ob["cache_enabled"] is True, cmd
    return seconds, ob


rows = []
for inst in INSTANCES:
    name = inst["name"]
    work = os.path.join(tmp, name)
    os.makedirs(work)
    module = os.path.join(work, os.path.basename(inst["file"]))
    shutil.copy(inst["file"], module)

    # Cold: a fresh cache directory per repeat; the last one becomes the
    # pristine image the warm and edit cells run against.
    cold, pristine = [], None
    for rep in range(REPEATS):
        pristine = os.path.join(work, f"cache{rep}")
        seconds, ob = run(module, inst["flags"], pristine)
        assert ob["cache_hits"] == 0 and ob["disk_hits"] == 0, ob
        cold.append(seconds)

    # Warm, unchanged module: all hits, and the dirty-skip writeback
    # leaves the image untouched, so repeats share the pristine copy.
    warm = []
    for _ in range(REPEATS):
        seconds, warm_ob = run(module, inst["flags"], pristine)
        assert warm_ob["cache_misses"] == 0, warm_ob
        warm.append(seconds)

    # Warm after a one-action edit: each repeat restores the pristine
    # image first, since the run itself appends the re-checked slices.
    src = open(module).read()
    old, new = inst["edit"]
    assert old in src, name
    open(module, "w").write(src.replace(old, new, 1))
    edit = []
    for rep in range(REPEATS):
        cache = os.path.join(work, f"edit{rep}")
        shutil.copytree(pristine, cache)
        seconds, edit_ob = run(module, inst["flags"], cache)
        assert edit_ob["cache_hits"] > 0 and edit_ob["cache_misses"] > 0, \
            edit_ob
        edit.append(seconds)

    med = statistics.median
    total = edit_ob["cache_hits"] + edit_ob["cache_misses"]
    rows.append({
        "instance": name,
        "edited_action": inst["edited_action"],
        "threads": 1,
        "repeats": REPEATS,
        "obligations": warm_ob["total"],
        "cold_seconds": round(med(cold), 4),
        "warm_seconds": round(med(warm), 4),
        "edit_seconds": round(med(edit), 4),
        "warm_speedup": round(med(cold) / med(warm), 2),
        "edit_speedup": round(med(cold) / med(edit), 2),
        "edit_redischarge_obligations": edit_ob["cache_misses"],
        "edit_redischarge_rate": round(edit_ob["cache_misses"] / total, 6),
    })

# Headline acceptance: the paper-scale Paxos instance after a one-action
# edit must re-discharge <30% of its obligations and beat cold by ≥3x.
headline = next(r for r in rows if r["instance"] == "paxos_R2_N3")
if headline["edit_redischarge_rate"] >= 0.30:
    sys.exit(f"error: headline re-discharge rate "
             f"{headline['edit_redischarge_rate']} >= 0.30")
if headline["edit_speedup"] < 3.0:
    sys.exit(f"error: headline edit speedup {headline['edit_speedup']} < 3x")

doc = {"context": {"isq_build_type": build_type, "isq_git_sha": git_sha}}
if os.path.exists(out):
    with open(out) as f:
        doc = json.load(f)
doc["incremental"] = {
    "isq_build_type": build_type, "isq_git_sha": git_sha, "rows": rows,
}
with open(out, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")

print()
print(f"{'instance':<22} {'cold_s':>8} {'warm_s':>8} {'edit_s':>8} "
      f"{'warm_x':>7} {'edit_x':>7} {'recheck':>8}")
for r in rows:
    print(f"{r['instance']:<22} {r['cold_seconds']:>8.2f} "
          f"{r['warm_seconds']:>8.2f} {r['edit_seconds']:>8.2f} "
          f"{r['warm_speedup']:>7.2f} {r['edit_speedup']:>7.2f} "
          f"{r['edit_redischarge_rate']:>8.2%}")
print()
EOF

echo "wrote $OUT (build type $BUILD_TYPE, git $GIT_SHA)"
