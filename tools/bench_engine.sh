#!/usr/bin/env bash
# Runs the engine-vs-seed exploration benchmarks (bench_statespace.cpp,
# BM_Engine*), the symmetry-reduction benchmarks (BM_Symmetry*,
# BM_VerifySymmetry*), and the checker-phase benchmarks (bench_verify.cpp,
# BM_Checker*), merges everything into BENCH_engine.json, then prints
#  - the speedup of the hash-consed engine (serial and 4-thread) over the
#    seed value-level BFS for each instance,
#  - the state-count and wall-clock reduction of the orbit-canonical
#    symmetry quotient over the unreduced engine, and
#  - the speedup of the obligation scheduler (1 and 4 workers) over the
#    serial reference checker loops for each isq-verify instance,
#  - the 1..8-worker scaling sweep of the checker on the paper-scale
#    Paxos (R=2, N=3) instance, and
#  - the compact-store scale row: Paxos over FOUR acceptors explored
#    end-to-end (symmetry + work stealing on), raw arenas vs the
#    delta/varint-compressed store (BM_CompactPaxos), and
#  - the tiered-store scale row: the same Paxos/4 exploration spilling
#    to the mmap'd cold tier under a memory budget derived from the
#    unspilled run's peak RSS (BM_SpillPaxos); the spilled run must
#    keep identical counts within 2.5x of the unspilled wall time.
#
# Every invocation of a benchmark binary runs under a getrusage wrapper
# (the image has no /usr/bin/time), and its child peak RSS is attached
# to each merged row as peak_rss_kb, so memory regressions show up in
# the recorded trajectory alongside speed.
#
# Numbers are recorded from a dedicated Release build directory
# (build-bench, configured here on first use): recording from a
# RelWithDebInfo or Debug tree is refused, and the merged JSON embeds the
# build type and git revision so a committed BENCH_engine.json is
# self-describing.
#
# Usage: tools/bench_engine.sh [BUILD_DIR] [OUT_JSON]

set -euo pipefail

BUILD="${1:-build-bench}"
OUT="${2:-BENCH_engine.json}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

if [ ! -f "$BUILD/CMakeCache.txt" ]; then
  cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release
fi

BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD/CMakeCache.txt")"
if [ "$BUILD_TYPE" != "Release" ]; then
  echo "error: $BUILD is a '$BUILD_TYPE' tree; benchmarks must be recorded" >&2
  echo "from a Release build (rerun without arguments, or point BUILD_DIR" >&2
  echo "at a -DCMAKE_BUILD_TYPE=Release configuration)." >&2
  exit 1
fi

GIT_SHA="$(git -C "$ROOT" rev-parse --short HEAD 2>/dev/null || echo unknown)"

cmake --build "$BUILD" -j --target bench_statespace bench_verify

TMP_ENGINE="$(mktemp)"
TMP_CHECKER="$(mktemp)"
TMP_COMPACT="$(mktemp)"
TMP_COMPACT1="$(mktemp)"
TMP_SPILL="$(mktemp)"
RSS_ENGINE="$(mktemp)"
RSS_CHECKER="$(mktemp)"
RSS_COMPACT="$(mktemp)"
RSS_COMPACT1="$(mktemp)"
RSS_SPILL="$(mktemp)"
SPILL_DIR="$(mktemp -d)"
trap 'rm -f "$TMP_ENGINE" "$TMP_CHECKER" "$TMP_COMPACT" "$TMP_COMPACT1" \
  "$TMP_SPILL" "$RSS_ENGINE" "$RSS_CHECKER" "$RSS_COMPACT" \
  "$RSS_COMPACT1" "$RSS_SPILL"; rm -rf "$SPILL_DIR"' EXIT

# The image has no /usr/bin/time; a getrusage wrapper records the
# child's peak RSS (kb) and wall time (s) into the first argument.
rss_run() {
  local out="$1"; shift
  python3 - "$out" "$@" <<'EOF'
import resource, subprocess, sys, time
t0 = time.monotonic()
rc = subprocess.call(sys.argv[2:])
wall = time.monotonic() - t0
rss = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
with open(sys.argv[1], "w") as f:
    f.write("%d %f\n" % (rss, wall))
sys.exit(rc)
EOF
}

rss_run "$RSS_ENGINE" "$BUILD/bench/bench_statespace" \
  --benchmark_filter='BM_Engine|BM_Symmetry' \
  --benchmark_out="$TMP_ENGINE" \
  --benchmark_out_format=json \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true

# The Paxos N=3 checker rows run ~1 min per mode; one repetition each.
rss_run "$RSS_CHECKER" "$BUILD/bench/bench_verify" \
  --benchmark_filter='BM_Checker|BM_VerifySymmetry' \
  --benchmark_out="$TMP_CHECKER" \
  --benchmark_out_format=json

# The Paxos N=4 compact-store rows are the scale target (minutes per
# mode); one repetition each.
rss_run "$RSS_COMPACT" "$BUILD/bench/bench_statespace" \
  --benchmark_filter='BM_Compact' \
  --benchmark_out="$TMP_COMPACT" \
  --benchmark_out_format=json

# Tiered-store scale row. First the compact run alone, so its peak RSS
# is not polluted by the raw-arena mode sharing the process; then the
# spilled run under a budget that is both <= 50% of that unspilled RSS
# (the headline claim) and <= 50% of the compact store footprint (so
# the budget bites and blocks provably evict — process RSS is dominated
# by allocator overhead the store accountant does not govern).
rss_run "$RSS_COMPACT1" "$BUILD/bench/bench_statespace" \
  --benchmark_filter='BM_CompactPaxos/2/4/1$' \
  --benchmark_out="$TMP_COMPACT1" \
  --benchmark_out_format=json
SPILL_BUDGET=$(python3 - "$RSS_COMPACT1" "$TMP_COMPACT1" <<'EOF'
import json, sys
rss_kb = int(open(sys.argv[1]).read().split()[0])
doc = json.load(open(sys.argv[2]))
footprint = int(doc["benchmarks"][0]["compressed_bytes"])
print(min(rss_kb * 1024 // 2, footprint // 2))
EOF
)
ISQ_SPILL_MEM_BUDGET="$SPILL_BUDGET" ISQ_SPILL_DIR="$SPILL_DIR" \
  rss_run "$RSS_SPILL" "$BUILD/bench/bench_statespace" \
  --benchmark_filter='BM_SpillPaxos' \
  --benchmark_out="$TMP_SPILL" \
  --benchmark_out_format=json

python3 - "$TMP_ENGINE" "$TMP_CHECKER" "$TMP_COMPACT" "$OUT" "$BUILD_TYPE" \
  "$GIT_SHA" "$TMP_COMPACT1" "$TMP_SPILL" "$RSS_ENGINE" "$RSS_CHECKER" \
  "$RSS_COMPACT" "$RSS_COMPACT1" "$RSS_SPILL" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    engine = json.load(f)
with open(sys.argv[2]) as f:
    checker = json.load(f)
with open(sys.argv[3]) as f:
    compact = json.load(f)
with open(sys.argv[7]) as f:
    compact_solo = json.load(f)
with open(sys.argv[8]) as f:
    spill = json.load(f)

def read_rss(path):
    rss_kb, wall = open(path).read().split()
    return int(rss_kb), float(wall)

rss = {"engine": read_rss(sys.argv[9]), "checker": read_rss(sys.argv[10]),
       "compact": read_rss(sys.argv[11]),
       "compact_solo": read_rss(sys.argv[12]),
       "spill": read_rss(sys.argv[13])}

# Every row carries the peak RSS of the recording process, so memory
# regressions are visible in the committed trajectory, not just speed.
for doc, src in ((engine, "engine"), (checker, "checker"),
                 (compact, "compact"), (compact_solo, "compact_solo"),
                 (spill, "spill")):
    for b in doc["benchmarks"]:
        b["peak_rss_kb"] = rss[src][0]

# One merged document: shared context, all benchmark families. The
# context carries how *our* library was compiled (library_build_type is
# the google-benchmark library, which may differ) and the revision.
context = dict(engine["context"])
context["isq_build_type"] = sys.argv[5]
context["isq_git_sha"] = sys.argv[6]

# Tiered-store exit criterion: the spilled Paxos/4 exploration ran
# under a budget <= 50% of the unspilled run's peak RSS, finished
# within 2.5x of its wall time, with identical counts and real
# evictions. The spill row records the unspilled baseline inline so
# the committed JSON is self-contained.
solo = compact_solo["benchmarks"][0]
spill_rows = [b for b in spill["benchmarks"]
              if b.get("run_type") != "aggregate"]
assert spill_rows, "BM_SpillPaxos produced no rows"
for b in spill_rows:
    assert "error_occurred" not in b or not b["error_occurred"], b
    assert b["mem_budget"] <= rss["compact_solo"][0] * 1024 / 2, \
        "budget exceeds half the unspilled peak RSS"
    assert b["blocks_evicted"] > 0, "budget never forced an eviction"
    assert b["configs"] == solo["configs"], \
        "spilled exploration changed the configuration count"
    assert b["real_time"] <= 2.5 * solo["real_time"], \
        "spilled run exceeded 2.5x the unspilled wall time"
    b["unspilled_real_time"] = solo["real_time"]
    b["unspilled_peak_rss_kb"] = rss["compact_solo"][0]

merged = {"context": context,
          "benchmarks": (engine["benchmarks"] + checker["benchmarks"] +
                         compact["benchmarks"] + spill_rows)}
with open(sys.argv[4], "w") as f:
    json.dump(merged, f, indent=1)

# Median real time (aggregated families) or single-run real time per
# (benchmark family, mode). The mode is the last /-separated argument:
# for BM_Engine*/BM_Checker*, 0 = serial baseline (seed BFS / serial
# checker loops), N >= 1 = the parallel engine/scheduler with N threads;
# for BM_Symmetry*/BM_VerifySymmetry*, 0 = unreduced, 1 = reduced.
times = {}
counters = {}
for b in merged["benchmarks"]:
    agg = b.get("aggregate_name")
    if agg is not None and agg != "median":
        continue
    name = b["run_name"]
    family, *args = name.split("/")
    mode = int(args[-1])
    key = (family, "/".join(args[:-1]))
    times.setdefault(key, {})[mode] = b["real_time"]
    counters.setdefault(key, {})[mode] = b

def table(title, rows):
    print()
    print(title)
    print(f"{'instance':<34} {'serial_ms':>10} {'x1_ms':>10} {'x1':>6} "
          f"{'x4_ms':>11} {'x4':>6}")
    for (family, inst), by_mode in rows:
        serial = by_mode.get(0)
        if serial is None:
            continue
        row = f"{family}/{inst:<12}".ljust(34)
        row += f" {serial:>10.2f}"
        e1 = by_mode.get(1)
        row += f" {e1:>10.2f} {serial / e1:>5.2f}x" if e1 else " " * 18
        e4 = by_mode.get(4)
        row += f" {e4:>11.2f} {serial / e4:>5.2f}x" if e4 else ""
        print(row)

# The config counter differs per family: BM_Symmetry* explores one
# program, so interned_configs is exactly the (quotient) state count;
# the end-to-end BM_VerifySymmetry* drivers share one arena across all
# proof legs, and the always-unreduced P[M -> I] leg dominates the
# interned set, so the explored-node counter is the meaningful one.
def symmetry_table(title, prefix, counter):
    rows = sorted(i for i in times.items() if i[0][0].startswith(prefix))
    if not rows:
        return
    print()
    print(title)
    print(f"{'instance':<34} {'full_ms':>10} {'quot_ms':>10} {'time':>6} "
          f"{'full_cfg':>9} {'quot_cfg':>9} {'cfg':>6}")
    for (family, inst), by_mode in rows:
        full, quot = by_mode.get(0), by_mode.get(1)
        if full is None or quot is None:
            continue
        cf = counters[(family, inst)][0][counter]
        cq = counters[(family, inst)][1][counter]
        print(f"{family}/{inst:<12}".ljust(34) +
              f" {full:>10.2f} {quot:>10.2f} {full / quot:>5.2f}x"
              f" {cf:>9.0f} {cq:>9.0f} {cf / cq:>5.2f}x")

table("exploration: seed value-level BFS vs hash-consed engine",
      sorted(i for i in times.items() if i[0][0].startswith("BM_Engine")))
symmetry_table("symmetry: unreduced engine vs orbit-canonical quotient",
               "BM_Symmetry", "interned_configs")
symmetry_table("symmetry end-to-end: isq-verify --no-symmetry vs reduced",
               "BM_VerifySymmetry", "configs")
table("checking: serial loops vs obligation scheduler "
      "(end-to-end isq-verify, cross-check off)",
      sorted(i for i in times.items() if i[0][0].startswith("BM_Checker")))

# Worker-count scaling sweep: every mode >= 1 recorded for a checker
# instance, as speedup over the serial reference loops (mode 0).
for (family, inst), by_mode in sorted(times.items()):
    if not family.startswith("BM_Checker"):
        continue
    sweep = sorted(m for m in by_mode if m >= 1)
    if len(sweep) <= 2:
        continue
    serial = by_mode.get(0)
    print()
    print(f"checker worker sweep: {family}/{inst} "
          f"(serial reference {serial:.2f} ms)")
    print(f"{'workers':>8} {'ms':>11} {'speedup':>8}")
    for m in sweep:
        print(f"{m:>8} {by_mode[m]:>11.2f} {serial / by_mode[m]:>7.2f}x")

# Compact-store scale rows: mode 0 = raw arenas, 1 = compressed store.
rows = sorted(i for i in times.items() if i[0][0].startswith("BM_Compact"))
if rows:
    print()
    print("compact store: Paxos scale target (symmetry + work stealing on)")
    print(f"{'instance':<28} {'raw_ms':>11} {'compact_ms':>11} "
          f"{'configs':>10} {'compressed_bytes':>17}")
    for (family, inst), by_mode in rows:
        raw, comp = by_mode.get(0), by_mode.get(1)
        if raw is None or comp is None:
            continue
        c = counters[(family, inst)][1]
        print(f"{family}/{inst:<10}".ljust(28) +
              f" {raw:>11.2f} {comp:>11.2f} {c['configs']:>10.0f}"
              f" {c['compressed_bytes']:>17.0f}")

# Tiered-store scale row: the spilled run against its unspilled
# baseline (the compact-solo recording), with the derived budget and
# the cold-tier traffic that proves the budget actually bit.
print()
print("tiered store: Paxos/4 spilled under a memory budget")
print(f"{'instance':<24} {'unspilled_ms':>12} {'spilled_ms':>11} "
      f"{'ratio':>6} {'budget':>9} {'evicted':>8} {'rss_kb':>8}")
for b in spill_rows:
    print(f"{b['run_name']:<24} {b['unspilled_real_time']:>12.2f} "
          f"{b['real_time']:>11.2f} "
          f"{b['real_time'] / b['unspilled_real_time']:>5.2f}x "
          f"{b['mem_budget']:>9.0f} {b['blocks_evicted']:>8.0f} "
          f"{b['peak_rss_kb']:>8}")
print()
EOF

echo "wrote $OUT (build type $BUILD_TYPE, git $GIT_SHA)"
