#!/usr/bin/env bash
# Runs the engine-vs-seed exploration benchmarks (bench_statespace.cpp,
# BM_Engine*) and writes BENCH_engine.json, then prints the speedup of the
# hash-consed engine (serial and 4-thread) over the seed value-level BFS
# for each instance.
#
# Usage: tools/bench_engine.sh [BUILD_DIR] [OUT_JSON]

set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-BENCH_engine.json}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

cmake --build "$BUILD" -j --target bench_statespace

"$BUILD/bench/bench_statespace" \
  --benchmark_filter='BM_Engine' \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true

python3 - "$OUT" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)

# Median real time per (benchmark family, mode). The mode is the last
# /-separated argument: 0 = seed BFS, N >= 1 = engine with N threads.
times = {}
for b in report["benchmarks"]:
    if b.get("aggregate_name") != "median":
        continue
    name = b["run_name"]
    family, *args = name.split("/")
    mode = int(args[-1])
    key = (family, "/".join(args[:-1]))
    times.setdefault(key, {})[mode] = b["real_time"]

print()
print(f"{'instance':<34} {'seed_ms':>10} {'engine_ms':>10} {'x1':>6} "
      f"{'engine4_ms':>11} {'x4':>6}")
for (family, inst), by_mode in sorted(times.items()):
    seed = by_mode.get(0)
    if seed is None:
        continue
    row = f"{family}/{inst:<12}".ljust(34)
    row += f" {seed:>10.2f}"
    e1 = by_mode.get(1)
    row += f" {e1:>10.2f} {seed / e1:>5.2f}x" if e1 else " " * 18
    e4 = by_mode.get(4)
    row += f" {e4:>11.2f} {seed / e4:>5.2f}x" if e4 else ""
    print(row)
print()
EOF

echo "wrote $OUT"
