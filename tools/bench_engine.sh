#!/usr/bin/env bash
# Runs the engine-vs-seed exploration benchmarks (bench_statespace.cpp,
# BM_Engine*) and the checker-phase benchmarks (bench_verify.cpp,
# BM_Checker*), merges both into BENCH_engine.json, then prints
#  - the speedup of the hash-consed engine (serial and 4-thread) over the
#    seed value-level BFS for each instance, and
#  - the speedup of the obligation scheduler (1 and 4 workers) over the
#    serial reference checker loops for each isq-verify instance.
#
# Usage: tools/bench_engine.sh [BUILD_DIR] [OUT_JSON]

set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-BENCH_engine.json}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

cmake --build "$BUILD" -j --target bench_statespace bench_verify

TMP_ENGINE="$(mktemp)"
TMP_CHECKER="$(mktemp)"
trap 'rm -f "$TMP_ENGINE" "$TMP_CHECKER"' EXIT

"$BUILD/bench/bench_statespace" \
  --benchmark_filter='BM_Engine' \
  --benchmark_out="$TMP_ENGINE" \
  --benchmark_out_format=json \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true

# The Paxos N=3 checker rows run ~1 min per mode; one repetition each.
"$BUILD/bench/bench_verify" \
  --benchmark_filter='BM_Checker' \
  --benchmark_out="$TMP_CHECKER" \
  --benchmark_out_format=json

python3 - "$TMP_ENGINE" "$TMP_CHECKER" "$OUT" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    engine = json.load(f)
with open(sys.argv[2]) as f:
    checker = json.load(f)

# One merged document: shared context, both benchmark families.
merged = {"context": engine["context"],
          "benchmarks": engine["benchmarks"] + checker["benchmarks"]}
with open(sys.argv[3], "w") as f:
    json.dump(merged, f, indent=1)

# Median real time (aggregated families) or single-run real time per
# (benchmark family, mode). The mode is the last /-separated argument:
# 0 = serial baseline (seed BFS / serial checker loops), N >= 1 = the
# parallel engine/scheduler with N threads.
times = {}
for b in merged["benchmarks"]:
    agg = b.get("aggregate_name")
    if agg is not None and agg != "median":
        continue
    name = b["run_name"]
    family, *args = name.split("/")
    mode = int(args[-1])
    key = (family, "/".join(args[:-1]))
    times.setdefault(key, {})[mode] = b["real_time"]

def table(title, rows):
    print()
    print(title)
    print(f"{'instance':<34} {'serial_ms':>10} {'x1_ms':>10} {'x1':>6} "
          f"{'x4_ms':>11} {'x4':>6}")
    for (family, inst), by_mode in rows:
        serial = by_mode.get(0)
        if serial is None:
            continue
        row = f"{family}/{inst:<12}".ljust(34)
        row += f" {serial:>10.2f}"
        e1 = by_mode.get(1)
        row += f" {e1:>10.2f} {serial / e1:>5.2f}x" if e1 else " " * 18
        e4 = by_mode.get(4)
        row += f" {e4:>11.2f} {serial / e4:>5.2f}x" if e4 else ""
        print(row)

table("exploration: seed value-level BFS vs hash-consed engine",
      sorted(i for i in times.items() if i[0][0].startswith("BM_Engine")))
table("checking: serial loops vs obligation scheduler "
      "(end-to-end isq-verify, cross-check off)",
      sorted(i for i in times.items() if i[0][0].startswith("BM_Checker")))
print()
EOF

echo "wrote $OUT"
