//===- bench/bench_rewriter.cpp - Fig. 2 soundness-construction experiment -----------===//
///
/// \file
/// Regenerates the induction argument of Fig. 2 mechanically: enumerates
/// terminating executions of the asynchronous protocols and rewrites each
/// into a P'-execution with the same final configuration via the
/// Lemma-4.2/4.3 procedure (replace-by-abstraction, commute left, absorb
/// into the invariant). Counters report how many executions were
/// rewritten, the total commute and absorption steps, and validate that
/// every rewrite preserved the final configuration.
///
//===----------------------------------------------------------------------===//

#include "explorer/Trace.h"
#include "is/Rewriter.h"
#include "protocols/Broadcast.h"
#include "protocols/ChangRoberts.h"
#include "protocols/PingPong.h"
#include "protocols/ProducerConsumer.h"

#include <benchmark/benchmark.h>

using namespace isq;
using namespace isq::protocols;

namespace {

void rewriteAll(benchmark::State &State, const ISApplication &App,
                const Store &Init, size_t MaxExecutions) {
  size_t Rewritten = 0, Commutes = 0, Absorptions = 0, Preserved = 0;
  for (auto _ : State) {
    Rewritten = Commutes = Absorptions = Preserved = 0;
    auto Execs = enumerateExecutions(App.P, initialConfiguration(Init),
                                     MaxExecutions, 200);
    for (const Execution &Pi : Execs) {
      if (!Pi.isTerminating())
        continue;
      RewriteResult R = rewriteExecution(App, Pi);
      if (!R.Ok)
        continue;
      ++Rewritten;
      Commutes += R.NumCommutes;
      Absorptions += R.NumAbsorptions;
      if (R.Rewritten.finalConfiguration() == Pi.finalConfiguration())
        ++Preserved;
    }
  }
  State.counters["executions_rewritten"] = static_cast<double>(Rewritten);
  State.counters["commutes"] = static_cast<double>(Commutes);
  State.counters["absorptions"] = static_cast<double>(Absorptions);
  State.counters["final_state_preserved"] = static_cast<double>(Preserved);
}

void BM_RewriteBroadcast(benchmark::State &State) {
  BroadcastParams Params{State.range(0), {}};
  rewriteAll(State, makeBroadcastIS(Params),
             makeBroadcastInitialStore(Params), 2000);
}
BENCHMARK(BM_RewriteBroadcast)->DenseRange(2, 3)->Unit(benchmark::kMillisecond);

void BM_RewritePingPong(benchmark::State &State) {
  PingPongParams Params{State.range(0)};
  rewriteAll(State, makePingPongIS(Params),
             makePingPongInitialStore(Params), 2000);
}
BENCHMARK(BM_RewritePingPong)->DenseRange(2, 4)->Unit(benchmark::kMillisecond);

void BM_RewriteProducerConsumer(benchmark::State &State) {
  ProducerConsumerParams Params{State.range(0)};
  rewriteAll(State, makeProducerConsumerIS(Params),
             makeProducerConsumerInitialStore(Params), 2000);
}
BENCHMARK(BM_RewriteProducerConsumer)
    ->DenseRange(2, 4)
    ->Unit(benchmark::kMillisecond);

void BM_RewriteChangRoberts(benchmark::State &State) {
  ChangRobertsParams Params{State.range(0), {}};
  rewriteAll(State, makeChangRobertsOneShotIS(Params),
             makeChangRobertsInitialStore(Params), 2000);
}
BENCHMARK(BM_RewriteChangRoberts)
    ->DenseRange(2, 4)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
