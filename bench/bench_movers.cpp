//===- bench/bench_movers.cpp - Mover-engine experiment ---------------------------===//
///
/// \file
/// Regenerates the paper's §5.1 observation that mover conditions are
/// discharged automatically by a dedicated engine: classifies every action
/// of every protocol (Both/Left/Right/None) over its reachable
/// configurations and reports the obligation counts and timing of the
/// pairwise commutativity checks.
///
//===----------------------------------------------------------------------===//

#include "explorer/Explorer.h"
#include "movers/MoverCheck.h"
#include "protocols/Broadcast.h"
#include "protocols/ChangRoberts.h"
#include "protocols/PingPong.h"
#include "protocols/ProducerConsumer.h"
#include "protocols/TwoPhaseCommit.h"

#include <benchmark/benchmark.h>

using namespace isq;
using namespace isq::protocols;

namespace {

/// Classifies every non-Main action of \p P over the reachable universe
/// and reports a bitmask-free summary through counters.
void classifyAll(benchmark::State &State, const Program &P,
                 const Store &Init) {
  ExploreResult R = explore(P, initialConfiguration(Init));
  size_t NumLeft = 0, NumRight = 0, NumBoth = 0, NumNone = 0;
  size_t Obligations = 0;
  for (auto _ : State) {
    NumLeft = NumRight = NumBoth = NumNone = 0;
    Obligations = 0;
    for (Symbol Name : P.actionNames()) {
      if (Name == Program::mainSymbol())
        continue;
      CheckResult L = checkLeftMover(Name, P.action(Name), P, R.Reachable);
      CheckResult Rt = checkRightMover(Name, P.action(Name), P, R.Reachable);
      Obligations += L.obligations() + Rt.obligations();
      if (L.ok() && Rt.ok())
        ++NumBoth;
      else if (L.ok())
        ++NumLeft;
      else if (Rt.ok())
        ++NumRight;
      else
        ++NumNone;
    }
  }
  State.counters["both"] = static_cast<double>(NumBoth);
  State.counters["left"] = static_cast<double>(NumLeft);
  State.counters["right"] = static_cast<double>(NumRight);
  State.counters["none"] = static_cast<double>(NumNone);
  State.counters["obligations"] = static_cast<double>(Obligations);
  State.counters["universe"] = static_cast<double>(R.Reachable.size());
}

void BM_MoversBroadcast(benchmark::State &State) {
  BroadcastParams Params{State.range(0), {}};
  classifyAll(State, makeBroadcastProgram(Params),
              makeBroadcastInitialStore(Params));
}
BENCHMARK(BM_MoversBroadcast)->DenseRange(2, 4)->Unit(benchmark::kMillisecond);

void BM_MoversPingPong(benchmark::State &State) {
  PingPongParams Params{State.range(0)};
  classifyAll(State, makePingPongProgram(Params),
              makePingPongInitialStore(Params));
}
BENCHMARK(BM_MoversPingPong)->DenseRange(2, 4)->Unit(benchmark::kMillisecond);

void BM_MoversProducerConsumer(benchmark::State &State) {
  ProducerConsumerParams Params{State.range(0)};
  classifyAll(State, makeProducerConsumerProgram(Params),
              makeProducerConsumerInitialStore(Params));
}
BENCHMARK(BM_MoversProducerConsumer)
    ->DenseRange(2, 5)
    ->Unit(benchmark::kMillisecond);

void BM_MoversChangRoberts(benchmark::State &State) {
  ChangRobertsParams Params{State.range(0), {}};
  classifyAll(State, makeChangRobertsProgram(Params),
              makeChangRobertsInitialStore(Params));
}
BENCHMARK(BM_MoversChangRoberts)
    ->DenseRange(2, 4)
    ->Unit(benchmark::kMillisecond);

void BM_MoversTwoPhaseCommit(benchmark::State &State) {
  TwoPhaseCommitParams Params{State.range(0)};
  classifyAll(State, makeTwoPhaseCommitProgram(Params),
              makeTwoPhaseCommitInitialStore(Params));
}
BENCHMARK(BM_MoversTwoPhaseCommit)
    ->DenseRange(2, 3)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
