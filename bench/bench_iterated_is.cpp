//===- bench/bench_iterated_is.cpp - Iterated-IS ablation (§5.3) ---------------------===//
///
/// \file
/// Regenerates the paper's §5.3 discussion of repeated IS application:
/// "an action that is eliminated in one IS application disappears from the
/// pool of actions w.r.t. which left-moverness has to be established in a
/// subsequent IS application." Compares, for the protocols with both
/// proofs, the one-shot application against the staged chain: left-mover
/// obligations, total obligations, and time.
///
//===----------------------------------------------------------------------===//

#include "is/ISCheck.h"
#include "is/Sequentialize.h"
#include "protocols/Broadcast.h"
#include "protocols/ChangRoberts.h"
#include "protocols/NBuyer.h"
#include "protocols/TwoPhaseCommit.h"

#include <benchmark/benchmark.h>

using namespace isq;
using namespace isq::protocols;

namespace {

struct ChainStats {
  size_t LeftMoverObligations = 0;
  size_t TotalObligations = 0;
  bool Accepted = true;
};

ChainStats
runChain(const std::vector<ISApplication> &Apps,
         const Store &Init) {
  ChainStats Stats;
  for (const ISApplication &App : Apps) {
    ISCheckReport Report = checkIS(App, {{Init, {}}});
    Stats.LeftMoverObligations += Report.LeftMovers.obligations();
    Stats.TotalObligations += Report.totalObligations();
    Stats.Accepted = Stats.Accepted && Report.ok();
  }
  return Stats;
}

void report(benchmark::State &State, const ChainStats &Stats) {
  State.counters["left_mover_obligations"] =
      static_cast<double>(Stats.LeftMoverObligations);
  State.counters["obligations"] =
      static_cast<double>(Stats.TotalObligations);
  State.counters["accepted"] = Stats.Accepted ? 1 : 0;
}

void BM_BroadcastOneShot(benchmark::State &State) {
  BroadcastParams Params{3, {}};
  ChainStats Stats;
  for (auto _ : State)
    Stats = runChain({makeBroadcastIS(Params)},
                     makeBroadcastInitialStore(Params));
  report(State, Stats);
}
BENCHMARK(BM_BroadcastOneShot)->Unit(benchmark::kMillisecond);

void BM_BroadcastTwoStage(benchmark::State &State) {
  BroadcastParams Params{3, {}};
  ChainStats Stats;
  for (auto _ : State) {
    ISApplication Stage1 = makeBroadcastStage1IS(Params);
    ISApplication Stage2 =
        makeBroadcastStage2IS(Params, applyIS(Stage1));
    Stats = runChain({Stage1, Stage2}, makeBroadcastInitialStore(Params));
  }
  report(State, Stats);
}
BENCHMARK(BM_BroadcastTwoStage)->Unit(benchmark::kMillisecond);

void BM_ChangRobertsOneShot(benchmark::State &State) {
  ChangRobertsParams Params{3, {2, 3, 1}};
  ChainStats Stats;
  for (auto _ : State)
    Stats = runChain({makeChangRobertsOneShotIS(Params)},
                     makeChangRobertsInitialStore(Params));
  report(State, Stats);
}
BENCHMARK(BM_ChangRobertsOneShot)->Unit(benchmark::kMillisecond);

void BM_ChangRobertsTwoStage(benchmark::State &State) {
  ChangRobertsParams Params{3, {2, 3, 1}};
  ChainStats Stats;
  for (auto _ : State) {
    ISApplication Stage1 = makeChangRobertsStage1IS(Params);
    ISApplication Stage2 =
        makeChangRobertsStage2IS(Params, applyIS(Stage1));
    Stats =
        runChain({Stage1, Stage2}, makeChangRobertsInitialStore(Params));
  }
  report(State, Stats);
}
BENCHMARK(BM_ChangRobertsTwoStage)->Unit(benchmark::kMillisecond);

void BM_NBuyerOneShot(benchmark::State &State) {
  NBuyerParams Params{3, 2, {0, 1}};
  ChainStats Stats;
  for (auto _ : State)
    Stats = runChain({makeNBuyerOneShotIS(Params)},
                     makeNBuyerInitialStore(Params));
  report(State, Stats);
}
BENCHMARK(BM_NBuyerOneShot)->Unit(benchmark::kMillisecond);

void BM_NBuyerFourStage(benchmark::State &State) {
  NBuyerParams Params{3, 2, {0, 1}};
  ChainStats Stats;
  for (auto _ : State) {
    std::vector<ISApplication> Apps;
    Program Current = makeNBuyerProgram(Params);
    for (size_t Stage = 0; Stage < kNBuyerStages; ++Stage) {
      Apps.push_back(makeNBuyerStageIS(Params, Stage, Current));
      Current = applyIS(Apps.back());
    }
    Stats = runChain(Apps, makeNBuyerInitialStore(Params));
  }
  report(State, Stats);
}
BENCHMARK(BM_NBuyerFourStage)->Unit(benchmark::kMillisecond);

void BM_TwoPhaseCommitOneShot(benchmark::State &State) {
  TwoPhaseCommitParams Params{3};
  ChainStats Stats;
  for (auto _ : State)
    Stats = runChain({makeTwoPhaseCommitOneShotIS(Params)},
                     makeTwoPhaseCommitInitialStore(Params));
  report(State, Stats);
}
BENCHMARK(BM_TwoPhaseCommitOneShot)->Unit(benchmark::kMillisecond);

void BM_TwoPhaseCommitFourStage(benchmark::State &State) {
  TwoPhaseCommitParams Params{3};
  ChainStats Stats;
  for (auto _ : State) {
    std::vector<ISApplication> Apps;
    Program Current = makeTwoPhaseCommitProgram(Params);
    for (size_t Stage = 0; Stage < kTwoPhaseCommitStages; ++Stage) {
      Apps.push_back(makeTwoPhaseCommitStageIS(Params, Stage, Current));
      Current = applyIS(Apps.back());
    }
    Stats = runChain(Apps, makeTwoPhaseCommitInitialStore(Params));
  }
  report(State, Stats);
}
BENCHMARK(BM_TwoPhaseCommitFourStage)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
