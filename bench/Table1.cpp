//===- bench/Table1.cpp - Table 1 pipeline registry -------------------------------===//

#include "bench/Table1.h"

#include "explorer/Explorer.h"
#include "is/ISCheck.h"
#include "is/Sequentialize.h"
#include "protocols/Broadcast.h"
#include "protocols/ChangRoberts.h"
#include "protocols/NBuyer.h"
#include "protocols/Paxos.h"
#include "protocols/PingPong.h"
#include "protocols/ProducerConsumer.h"
#include "protocols/TwoPhaseCommit.h"
#include "support/Format.h"
#include "support/Timer.h"

#include <functional>
#include <vector>

using namespace isq;
using namespace isq::bench;
using namespace isq::protocols;

namespace {

/// Runs a chain of IS applications (each on the result of the previous),
/// then checks the spec on the fully sequentialized program.
struct Pipeline {
  std::string Name;
  size_t PaperNumIS;
  /// Produces the IS applications in order; each receives the program
  /// produced by the previous stage (the first receives its own P).
  std::vector<std::function<ISApplication(const Program &)>> Stages;
  Store Init;
  std::function<bool(const Store &)> Spec;
  /// The initial program of stage 0.
  Program P0;
};

Table1Row runPipeline(const Pipeline &Pipe) {
  Table1Row Row;
  Row.Name = Pipe.Name;
  Row.PaperNumIS = Pipe.PaperNumIS;
  Row.NumISApplications = Pipe.Stages.size();
  Timer T;
  bool AllOk = true;
  Program Current = Pipe.P0;
  for (const auto &MakeStage : Pipe.Stages) {
    ISApplication App = MakeStage(Current);
    ISCheckReport Report = checkIS(App, {{Pipe.Init, {}}});
    Row.Obligations += Report.totalObligations();
    AllOk = AllOk && Report.ok();
    Current = applyIS(App);
  }
  // The sequential reduction must terminate in spec-satisfying states.
  ExploreResult R = explore(Current, initialConfiguration(Pipe.Init));
  AllOk = AllOk && !R.FailureReachable && !R.TerminalStores.empty();
  for (const Store &Final : R.TerminalStores)
    AllOk = AllOk && Pipe.Spec(Final);
  Row.Accepted = AllOk;
  Row.Seconds = T.elapsed();
  return Row;
}

std::vector<Pipeline> buildPipelines() {
  std::vector<Pipeline> Pipes;

  // Broadcast consensus: 2 IS applications (§5.3 iterated proof).
  {
    BroadcastParams Params{3, {}};
    Pipeline Pipe;
    Pipe.Name = "Broadcast consensus";
    Pipe.PaperNumIS = 2;
    Pipe.P0 = makeBroadcastProgram(Params);
    Pipe.Init = makeBroadcastInitialStore(Params);
    Pipe.Stages.push_back(
        [Params](const Program &) { return makeBroadcastStage1IS(Params); });
    Pipe.Stages.push_back([Params](const Program &Prev) {
      return makeBroadcastStage2IS(Params, Prev);
    });
    Pipe.Spec = [Params](const Store &Final) {
      return checkBroadcastSpec(Final, Params);
    };
    Pipes.push_back(std::move(Pipe));
  }

  // Ping-Pong: 1 IS application.
  {
    PingPongParams Params{3};
    Pipeline Pipe;
    Pipe.Name = "Ping-Pong";
    Pipe.PaperNumIS = 1;
    Pipe.P0 = makePingPongProgram(Params);
    Pipe.Init = makePingPongInitialStore(Params);
    Pipe.Stages.push_back(
        [Params](const Program &) { return makePingPongIS(Params); });
    Pipe.Spec = [Params](const Store &Final) {
      return checkPingPongSpec(Final, Params);
    };
    Pipes.push_back(std::move(Pipe));
  }

  // Producer-Consumer: 1 IS application.
  {
    ProducerConsumerParams Params{4};
    Pipeline Pipe;
    Pipe.Name = "Producer-Consumer";
    Pipe.PaperNumIS = 1;
    Pipe.P0 = makeProducerConsumerProgram(Params);
    Pipe.Init = makeProducerConsumerInitialStore(Params);
    Pipe.Stages.push_back([Params](const Program &) {
      return makeProducerConsumerIS(Params);
    });
    Pipe.Spec = [Params](const Store &Final) {
      return checkProducerConsumerSpec(Final, Params);
    };
    Pipes.push_back(std::move(Pipe));
  }

  // N-Buyer: 4 IS applications.
  {
    NBuyerParams Params{3, 2, {0, 1}};
    Pipeline Pipe;
    Pipe.Name = "N-Buyer";
    Pipe.PaperNumIS = 4;
    Pipe.P0 = makeNBuyerProgram(Params);
    Pipe.Init = makeNBuyerInitialStore(Params);
    for (size_t Stage = 0; Stage < kNBuyerStages; ++Stage)
      Pipe.Stages.push_back([Params, Stage](const Program &Prev) {
        return makeNBuyerStageIS(Params, Stage, Prev);
      });
    Pipe.Spec = [Params](const Store &Final) {
      return checkNBuyerSpec(Final, Params);
    };
    Pipes.push_back(std::move(Pipe));
  }

  // Chang-Roberts: 2 IS applications.
  {
    ChangRobertsParams Params{3, {2, 3, 1}};
    Pipeline Pipe;
    Pipe.Name = "Chang-Roberts";
    Pipe.PaperNumIS = 2;
    Pipe.P0 = makeChangRobertsProgram(Params);
    Pipe.Init = makeChangRobertsInitialStore(Params);
    Pipe.Stages.push_back([Params](const Program &) {
      return makeChangRobertsStage1IS(Params);
    });
    Pipe.Stages.push_back([Params](const Program &Prev) {
      return makeChangRobertsStage2IS(Params, Prev);
    });
    Pipe.Spec = [Params](const Store &Final) {
      return checkChangRobertsSpec(Final, Params);
    };
    Pipes.push_back(std::move(Pipe));
  }

  // Two-phase commit: 4 IS applications.
  {
    TwoPhaseCommitParams Params{3};
    Pipeline Pipe;
    Pipe.Name = "Two-phase commit";
    Pipe.PaperNumIS = 4;
    Pipe.P0 = makeTwoPhaseCommitProgram(Params);
    Pipe.Init = makeTwoPhaseCommitInitialStore(Params);
    for (size_t Stage = 0; Stage < kTwoPhaseCommitStages; ++Stage)
      Pipe.Stages.push_back([Params, Stage](const Program &Prev) {
        return makeTwoPhaseCommitStageIS(Params, Stage, Prev);
      });
    Pipe.Spec = [Params](const Store &Final) {
      return checkTwoPhaseCommitSpec(Final, Params);
    };
    Pipes.push_back(std::move(Pipe));
  }

  // Paxos: 1 IS application (the most expensive row, as in the paper).
  {
    PaxosParams Params{2, 3};
    Pipeline Pipe;
    Pipe.Name = "Paxos";
    Pipe.PaperNumIS = 1;
    Pipe.P0 = makePaxosProgram(Params);
    Pipe.Init = makePaxosInitialStore(Params);
    Pipe.Stages.push_back(
        [Params](const Program &) { return makePaxosIS(Params); });
    Pipe.Spec = [Params](const Store &Final) {
      return checkPaxosSpec(Final, Params);
    };
    Pipes.push_back(std::move(Pipe));
  }

  return Pipes;
}

const std::vector<Pipeline> &pipelines() {
  static const std::vector<Pipeline> Pipes = buildPipelines();
  return Pipes;
}

} // namespace

size_t bench::numTable1Rows() { return pipelines().size(); }

Table1Row bench::runTable1Row(size_t Index) {
  return runPipeline(pipelines().at(Index));
}

std::string bench::renderTable1() {
  std::vector<std::vector<std::string>> Rows;
  for (size_t I = 0; I < numTable1Rows(); ++I) {
    Table1Row Row = runTable1Row(I);
    Rows.push_back({Row.Name, std::to_string(Row.NumISApplications),
                    std::to_string(Row.PaperNumIS),
                    std::to_string(Row.Obligations),
                    Row.Accepted ? "yes" : "NO",
                    formatSeconds(Row.Seconds)});
  }
  return "Table 1 (reproduced): examples verified with IS\n" +
         formatTable({"Example", "#IS", "#IS(paper)", "Obligations",
                      "Verified", "Time(s)"},
                     Rows);
}
