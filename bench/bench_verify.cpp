//===- bench/bench_verify.cpp - End-to-end checker-phase benchmarks ----------------===//
///
/// \file
/// Benchmarks the isq-verify pipeline end-to-end on the shipped Paxos
/// module, isolating the obligation-checking phase: once exploration is
/// parallel (PR 2), checking dominates wall-clock, and this is the
/// workload the obligation scheduler exists for. Modes mirror the engine
/// benchmarks: 0 = the serial reference checker loops
/// (--no-parallel-check), N >= 1 = the obligation scheduler with N worker
/// threads. Consumed by tools/bench_engine.sh, which emits the checker
/// section of BENCH_engine.json and computes the speedups.
///
//===----------------------------------------------------------------------===//

#include "driver/VerifyDriver.h"

#include <benchmark/benchmark.h>

#include <fstream>
#include <sstream>

using namespace isq;
using namespace isq::driver;

namespace {

std::string readExampleAsl(const char *Name) {
  std::ifstream In(std::string(ISQ_SOURCE_DIR) + "/examples/asl/" + Name);
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

/// Runs verifyModule once per iteration. The exploration phase is shared
/// by all modes (and measured by BM_Engine*); the counters isolate the
/// checking phase this benchmark is about.
void reportVerify(benchmark::State &State, VerifyOptions Options,
                  int64_t Mode) {
  Options.CrossCheck = false; // exploration-bound; BM_Engine* covers it
  if (Mode == 0) {
    Options.Engine.ParallelCheck = false;
    Options.Engine.NumThreads = 1;
  } else {
    Options.Engine.ParallelCheck = true;
    Options.Engine.NumThreads = static_cast<unsigned>(Mode);
  }
  double CheckSeconds = 0, ExploreSeconds = 0;
  size_t Obligations = 0;
  for (auto _ : State) {
    VerifyResult R = verifyModule(Options);
    if (!R.Accepted) {
      State.SkipWithError("proof unexpectedly rejected");
      return;
    }
    ExploreSeconds = R.Engine.TotalSeconds;
    CheckSeconds = R.TotalSeconds - ExploreSeconds;
    const ISCheckReport &Rep = R.Report;
    Obligations = Rep.SideConditions.obligations() +
                  Rep.AbstractionRefinement.obligations() +
                  Rep.BaseCase.obligations() + Rep.Conclusion.obligations() +
                  Rep.InductiveStep.obligations() +
                  Rep.LeftMovers.obligations() + Rep.Cooperation.obligations();
    benchmark::DoNotOptimize(R);
  }
  State.counters["check_seconds"] = CheckSeconds;
  State.counters["explore_seconds"] = ExploreSeconds;
  State.counters["obligations"] = static_cast<double>(Obligations);
}

/// Paxos with 2 rounds over N acceptors (N = 3 is the paper-scale
/// instance; unreduced its universe has ~485k configurations and ~4.3M
/// serial obligations — symmetry reduction, on by default, shrinks both;
/// see BM_VerifySymmetry* for the on/off differential).
void BM_CheckerPaxos(benchmark::State &State) {
  int64_t N = State.range(0);
  VerifyOptions Options;
  Options.Source = readExampleAsl("paxos.asl");
  Options.Consts = {{"R", 2}, {"N", N}};
  Options.Order = VerifyOptions::RankOrder::ArgMajor;
  Options.Eliminate = {"StartRound", "Join", "Propose", "Vote", "Conclude"};
  Options.Abstractions = {{"Join", "JoinAbs"},
                          {"Propose", "ProposeAbs"},
                          {"Vote", "VoteAbs"},
                          {"Conclude", "ConcludeAbs"}};
  // Weights must dominate the fan-out (see the module header).
  Options.Weights = N >= 3
                        ? std::map<std::string, uint64_t>{{"StartRound", 11},
                                                          {"Propose", 6},
                                                          {"Conclude", 2}}
                        : std::map<std::string, uint64_t>{{"StartRound", 9},
                                                          {"Propose", 5},
                                                          {"Conclude", 2}};
  reportVerify(State, std::move(Options), State.range(1));
}
BENCHMARK(BM_CheckerPaxos)
    ->Args({2, 0}) // serial reference loops
    ->Args({2, 1}) // scheduler, 1 worker
    ->Args({2, 4}) // scheduler, 4 workers
    ->Args({3, 0})
    // Full worker sweep on the paper-scale instance: BENCH_engine.json
    // records how checker throughput scales from 1 to 8 workers (the
    // acceptance target compares mode 0 against mode 4).
    ->Args({3, 1})
    ->Args({3, 2})
    ->Args({3, 3})
    ->Args({3, 4})
    ->Args({3, 5})
    ->Args({3, 6})
    ->Args({3, 7})
    ->Args({3, 8})
    ->Unit(benchmark::kMillisecond);

/// End-to-end isq-verify wall-clock with and without symmetry reduction on
/// the symmetric modules. Mode 0 = --no-symmetry, Mode 1 = reduced; both
/// use the scheduler with one worker so the ratio isolates the quotient.
void reportVerifySymmetry(benchmark::State &State, VerifyOptions Options,
                          int64_t Mode) {
  Options.Engine.Symmetry = Mode == 1;
  Options.Engine.NumThreads = 1;
  size_t Configs = 0, Interned = 0;
  for (auto _ : State) {
    VerifyResult R = verifyModule(Options);
    if (!R.Accepted) {
      State.SkipWithError("proof unexpectedly rejected");
      return;
    }
    Configs = R.Engine.NumConfigurations;
    Interned = R.Engine.InternedConfigs;
    benchmark::DoNotOptimize(R);
  }
  State.counters["configs"] = static_cast<double>(Configs);
  State.counters["interned_configs"] = static_cast<double>(Interned);
}

void BM_VerifySymmetryPaxos(benchmark::State &State) {
  int64_t N = State.range(0);
  VerifyOptions Options;
  Options.Source = readExampleAsl("paxos.asl");
  Options.Consts = {{"R", 2}, {"N", N}};
  Options.Order = VerifyOptions::RankOrder::ArgMajor;
  Options.Eliminate = {"StartRound", "Join", "Propose", "Vote", "Conclude"};
  Options.Abstractions = {{"Join", "JoinAbs"},
                          {"Propose", "ProposeAbs"},
                          {"Vote", "VoteAbs"},
                          {"Conclude", "ConcludeAbs"}};
  Options.Weights = N >= 3
                        ? std::map<std::string, uint64_t>{{"StartRound", 11},
                                                          {"Propose", 6},
                                                          {"Conclude", 2}}
                        : std::map<std::string, uint64_t>{{"StartRound", 9},
                                                          {"Propose", 5},
                                                          {"Conclude", 2}};
  reportVerifySymmetry(State, std::move(Options), State.range(1));
}
BENCHMARK(BM_VerifySymmetryPaxos)
    ->Args({3, 0}) // unreduced (--no-symmetry)
    ->Args({3, 1}) // orbit-canonical quotient
    ->Unit(benchmark::kMillisecond);

void BM_VerifySymmetryTwoPhaseCommit(benchmark::State &State) {
  VerifyOptions Options;
  Options.Source = readExampleAsl("two_phase_commit.asl");
  Options.Consts = {{"n", State.range(0)}};
  Options.Eliminate = {"RequestVotes", "Vote", "Decide", "Finalize"};
  Options.Abstractions = {{"Decide", "DecideAbs"}};
  Options.Weights = {{"RequestVotes", 8}, {"Decide", 4}};
  reportVerifySymmetry(State, std::move(Options), State.range(1));
}
BENCHMARK(BM_VerifySymmetryTwoPhaseCommit)
    ->Args({3, 0})
    ->Args({3, 1})
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
