//===- bench/bench_asl.cpp - ASL frontend overhead ----------------------------------===//
///
/// \file
/// Quantifies the textual frontend: compilation throughput (lex + parse +
/// type check + close over the semantics) and the interpretation overhead
/// of verifying an ASL-defined protocol versus its native C++ twin. The
/// proof-rule engine is frontend-agnostic, so the obligation counts
/// coincide; only the per-transition evaluation cost differs.
///
//===----------------------------------------------------------------------===//

#include "driver/VerifyDriver.h"
#include "is/ISCheck.h"
#include "protocols/Broadcast.h"

#include <benchmark/benchmark.h>

#include <fstream>
#include <sstream>

using namespace isq;

namespace {

std::string readExampleAsl(const char *Name) {
  std::ifstream In(std::string(ISQ_SOURCE_DIR) + "/examples/asl/" + Name);
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

void BM_CompileBroadcastModule(benchmark::State &State) {
  std::string Source = readExampleAsl("broadcast.asl");
  size_t Actions = 0;
  for (auto _ : State) {
    std::vector<asl::Diagnostic> Diags;
    auto C = asl::compileModule(Source, {{"n", State.range(0)}}, Diags);
    Actions = C ? C->P.actionNames().size() : 0;
    benchmark::DoNotOptimize(C);
  }
  State.counters["actions"] = static_cast<double>(Actions);
}
BENCHMARK(BM_CompileBroadcastModule)
    ->DenseRange(2, 5)
    ->Unit(benchmark::kMicrosecond);

void BM_VerifyBroadcastAsl(benchmark::State &State) {
  driver::VerifyOptions Options;
  Options.Source = readExampleAsl("broadcast.asl");
  Options.Consts = {{"n", State.range(0)}};
  Options.Eliminate = {"Broadcast", "Collect"};
  Options.Abstractions = {{"Collect", "CollectAbs"}};
  Options.CrossCheck = false;
  bool Accepted = false;
  size_t Obligations = 0;
  for (auto _ : State) {
    driver::VerifyResult Result = driver::verifyModule(Options);
    Accepted = Result.Accepted;
    Obligations = Result.Report.totalObligations();
  }
  State.counters["accepted"] = Accepted ? 1 : 0;
  State.counters["obligations"] = static_cast<double>(Obligations);
}
BENCHMARK(BM_VerifyBroadcastAsl)
    ->DenseRange(2, 4)
    ->Unit(benchmark::kMillisecond);

void BM_VerifyBroadcastNative(benchmark::State &State) {
  using namespace isq::protocols;
  BroadcastParams Params{State.range(0), {}};
  bool Accepted = false;
  size_t Obligations = 0;
  for (auto _ : State) {
    ISApplication App = makeBroadcastIS(Params);
    ISCheckReport Report =
        checkIS(App, {{makeBroadcastInitialStore(Params), {}}});
    Accepted = Report.ok();
    Obligations = Report.totalObligations();
  }
  State.counters["accepted"] = Accepted ? 1 : 0;
  State.counters["obligations"] = static_cast<double>(Obligations);
}
BENCHMARK(BM_VerifyBroadcastNative)
    ->DenseRange(2, 4)
    ->Unit(benchmark::kMillisecond);

void BM_VerifyPaxosAsl(benchmark::State &State) {
  driver::VerifyOptions Options;
  Options.Source = readExampleAsl("paxos.asl");
  Options.Consts = {{"R", 2}, {"N", 2}};
  Options.Eliminate = {"StartRound", "Join", "Propose", "Vote",
                       "Conclude"};
  Options.Order = driver::VerifyOptions::RankOrder::ArgMajor;
  Options.Abstractions = {{"Join", "JoinAbs"},
                          {"Propose", "ProposeAbs"},
                          {"Vote", "VoteAbs"},
                          {"Conclude", "ConcludeAbs"}};
  Options.Weights = {{"StartRound", 9}, {"Propose", 5}, {"Conclude", 2}};
  Options.CrossCheck = false;
  bool Accepted = false;
  for (auto _ : State) {
    driver::VerifyResult Result = driver::verifyModule(Options);
    Accepted = Result.Accepted;
  }
  State.counters["accepted"] = Accepted ? 1 : 0;
}
BENCHMARK(BM_VerifyPaxosAsl)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
