//===- bench/Table1.h - Table 1 pipeline registry -----------------*- C++ -*-===//
///
/// \file
/// The per-protocol verification pipelines behind the Table 1 reproduction:
/// each row runs every IS application of one protocol (building universes,
/// discharging all conditions) and records acceptance, obligation counts
/// and timing. Shared by bench_table1 and the experiment record.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_BENCH_TABLE1_H
#define ISQ_BENCH_TABLE1_H

#include <cstddef>
#include <string>

namespace isq {
namespace bench {

/// One row of the reproduced Table 1.
struct Table1Row {
  std::string Name;
  /// Number of IS applications (must match the paper's #IS column).
  size_t NumISApplications = 0;
  /// The paper's #IS column value, for side-by-side comparison.
  size_t PaperNumIS = 0;
  /// Verification obligations discharged across all applications.
  size_t Obligations = 0;
  /// Whether every application was accepted and the final program
  /// satisfies the protocol's specification.
  bool Accepted = false;
  /// Wall-clock seconds for the full pipeline.
  double Seconds = 0.0;
};

/// Number of protocols in the table.
size_t numTable1Rows();

/// Runs the full pipeline for row \p Index (0-based).
Table1Row runTable1Row(size_t Index);

/// Runs every row and renders the Table-1-shaped summary.
std::string renderTable1();

} // namespace bench
} // namespace isq

#endif // ISQ_BENCH_TABLE1_H
