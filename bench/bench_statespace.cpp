//===- bench/bench_statespace.cpp - Interleaving-explosion experiment --------------===//
///
/// \file
/// Regenerates the paper's §1/§2 claim that the sequential reduction
/// eliminates the interleaving explosion: for every protocol, compares the
/// number of reachable configurations (and transitions) of the
/// asynchronous program P against the sequentialized P' = P[M ↦ M'],
/// sweeping the instance size. P grows combinatorially; P' stays at
/// 1 + #outcomes.
///
//===----------------------------------------------------------------------===//

#include "explorer/Explorer.h"
#include "is/Sequentialize.h"
#include "protocols/Broadcast.h"
#include "protocols/ChangRoberts.h"
#include "protocols/Paxos.h"
#include "protocols/PingPong.h"
#include "protocols/ProducerConsumer.h"
#include "protocols/TwoPhaseCommit.h"

#include <benchmark/benchmark.h>

#include <cstdlib>

using namespace isq;
using namespace isq::protocols;

namespace {

void reportPair(benchmark::State &State, const Program &P,
                const Program &PPrime, const Store &Init) {
  size_t ConfigsP = 0, ConfigsPPrime = 0, TransP = 0;
  for (auto _ : State) {
    ExploreResult RP = explore(P, initialConfiguration(Init));
    ExploreResult RS = explore(PPrime, initialConfiguration(Init));
    ConfigsP = RP.Stats.NumConfigurations;
    TransP = RP.Stats.NumTransitions;
    ConfigsPPrime = RS.Stats.NumConfigurations;
  }
  State.counters["configs_P"] = static_cast<double>(ConfigsP);
  State.counters["transitions_P"] = static_cast<double>(TransP);
  State.counters["configs_Pprime"] = static_cast<double>(ConfigsPPrime);
  State.counters["reduction_x"] =
      ConfigsPPrime ? static_cast<double>(ConfigsP) /
                          static_cast<double>(ConfigsPPrime)
                    : 0;
}

void BM_Broadcast(benchmark::State &State) {
  BroadcastParams Params{State.range(0), {}};
  ISApplication App = makeBroadcastIS(Params);
  reportPair(State, App.P, applyIS(App), makeBroadcastInitialStore(Params));
}
BENCHMARK(BM_Broadcast)->DenseRange(2, 5)->Unit(benchmark::kMillisecond);

void BM_PingPong(benchmark::State &State) {
  PingPongParams Params{State.range(0)};
  ISApplication App = makePingPongIS(Params);
  reportPair(State, App.P, applyIS(App), makePingPongInitialStore(Params));
}
BENCHMARK(BM_PingPong)->DenseRange(2, 6)->Unit(benchmark::kMillisecond);

void BM_ProducerConsumer(benchmark::State &State) {
  ProducerConsumerParams Params{State.range(0)};
  ISApplication App = makeProducerConsumerIS(Params);
  reportPair(State, App.P, applyIS(App),
             makeProducerConsumerInitialStore(Params));
}
BENCHMARK(BM_ProducerConsumer)
    ->DenseRange(2, 6)
    ->Unit(benchmark::kMillisecond);

void BM_ChangRoberts(benchmark::State &State) {
  ChangRobertsParams Params{State.range(0), {}};
  ISApplication App = makeChangRobertsOneShotIS(Params);
  reportPair(State, App.P, applyIS(App),
             makeChangRobertsInitialStore(Params));
}
BENCHMARK(BM_ChangRoberts)->DenseRange(2, 5)->Unit(benchmark::kMillisecond);

void BM_TwoPhaseCommit(benchmark::State &State) {
  TwoPhaseCommitParams Params{State.range(0)};
  ISApplication App = makeTwoPhaseCommitOneShotIS(Params);
  reportPair(State, App.P, applyIS(App),
             makeTwoPhaseCommitInitialStore(Params));
}
BENCHMARK(BM_TwoPhaseCommit)
    ->DenseRange(2, 4)
    ->Unit(benchmark::kMillisecond);

void BM_Paxos(benchmark::State &State) {
  PaxosParams Params{State.range(0), State.range(1)};
  ISApplication App = makePaxosIS(Params);
  reportPair(State, App.P, applyIS(App), makePaxosInitialStore(Params));
}
BENCHMARK(BM_Paxos)
    ->Args({1, 3})
    ->Args({2, 2})
    ->Args({2, 3})
    ->Unit(benchmark::kMillisecond);

//===----------------------------------------------------------------------===//
// Engine comparison: seed value-level BFS vs the hash-consed engine,
// serial and parallel. Consumed by tools/bench_engine.sh, which emits
// BENCH_engine.json and computes the speedups.
//===----------------------------------------------------------------------===//

/// Explores P once per iteration; Mode 0 = legacy value-level BFS (the
/// seed explorer), Mode ≥ 1 = engine with that many worker threads.
void reportEngineExplore(benchmark::State &State, const Program &P,
                         const Store &Init, int64_t Mode) {
  ExploreOptions Opts;
  // The legacy BFS is always unreduced; keep the engine on the same state
  // space so the speedup isolates hash-consing and parallelism. Symmetry
  // reduction is measured separately by BM_Symmetry*.
  Opts.Config.Symmetry = false;
  if (Mode >= 1)
    Opts.Config.NumThreads = static_cast<unsigned>(Mode);
  size_t Configs = 0, Transitions = 0;
  double HitRate = 0;
  for (auto _ : State) {
    ExploreResult R =
        Mode == 0 ? exploreAllLegacy(P, {initialConfiguration(Init)}, Opts)
                  : exploreAll(P, {initialConfiguration(Init)}, Opts);
    Configs = R.Stats.NumConfigurations;
    Transitions = R.Stats.NumTransitions;
    HitRate = R.Engine.hashConsHitRate();
    benchmark::DoNotOptimize(R);
  }
  State.counters["configs"] = static_cast<double>(Configs);
  State.counters["transitions"] = static_cast<double>(Transitions);
  State.counters["hashcons_hit"] = HitRate;
}

/// Largest Table 1 instance: Paxos with 2 proposers, 3 acceptors.
void BM_EnginePaxos(benchmark::State &State) {
  PaxosParams Params{State.range(0), State.range(1)};
  ISApplication App = makePaxosIS(Params);
  reportEngineExplore(State, App.P, makePaxosInitialStore(Params),
                      State.range(2));
}
BENCHMARK(BM_EnginePaxos)
    ->Args({2, 3, 0}) // seed value-level BFS
    ->Args({2, 3, 1}) // engine, serial
    ->Args({2, 3, 4}) // engine, 4 worker threads
    ->Unit(benchmark::kMillisecond);

void BM_EngineTwoPhaseCommit(benchmark::State &State) {
  TwoPhaseCommitParams Params{State.range(0)};
  reportEngineExplore(State, makeTwoPhaseCommitProgram(Params),
                      makeTwoPhaseCommitInitialStore(Params),
                      State.range(1));
}
BENCHMARK(BM_EngineTwoPhaseCommit)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({4, 4})
    ->Unit(benchmark::kMillisecond);

//===----------------------------------------------------------------------===//
// Symmetry reduction: unreduced engine vs the orbit-canonical quotient on
// the protocols that declare a symmetric node sort. Mode 0 = unreduced,
// Mode 1 = reduced (both serial, so the ratio isolates the reduction).
// Consumed by tools/bench_engine.sh.
//===----------------------------------------------------------------------===//

void reportSymmetryExplore(benchmark::State &State, const Program &P,
                           const Store &Init, int64_t Mode) {
  ExploreOptions Opts;
  Opts.Config.Symmetry = Mode == 1;
  size_t Configs = 0, Interned = 0, OrbitStates = 0;
  for (auto _ : State) {
    ExploreResult R = exploreAll(P, {initialConfiguration(Init)}, Opts);
    Configs = R.Stats.NumConfigurations;
    Interned = R.Engine.InternedConfigs;
    OrbitStates = R.Engine.OrbitStatesRepresented;
    benchmark::DoNotOptimize(R);
  }
  State.counters["configs"] = static_cast<double>(Configs);
  State.counters["interned_configs"] = static_cast<double>(Interned);
  State.counters["orbit_states"] = static_cast<double>(OrbitStates);
}

void BM_SymmetryPaxos(benchmark::State &State) {
  PaxosParams Params{State.range(0), State.range(1)};
  reportSymmetryExplore(State, makePaxosProgram(Params),
                        makePaxosInitialStore(Params), State.range(2));
}
BENCHMARK(BM_SymmetryPaxos)
    ->Args({2, 3, 0}) // unreduced
    ->Args({2, 3, 1}) // orbit-canonical quotient
    ->Unit(benchmark::kMillisecond);

//===----------------------------------------------------------------------===//
// Compact-store scale target: Paxos with 2 rounds over FOUR acceptors
// must explore end-to-end on one machine. Symmetry reduction and the
// work-stealing engine are both on (this is the shipped default); Mode
// selects the store encoding: 0 = raw interning arenas, 1 = the
// delta/varint-compressed compact store. Counters record the quotient
// size and the compressed footprint so BENCH_engine.json documents what
// "fits on one machine" means. Consumed by tools/bench_engine.sh.
//===----------------------------------------------------------------------===//

void reportCompactExplore(benchmark::State &State, const Program &P,
                          const Store &Init, int64_t Mode) {
  ExploreOptions Opts;
  // The quotient for 2 rounds x 4 acceptors still runs past the default
  // 2M-configuration cap's comfort zone; raise it so truncation can
  // never mask an incomplete run (the Truncated flag is asserted below).
  Opts.MaxConfigurations = 50'000'000;
  Opts.Config.Symmetry = true;
  Opts.Config.NumThreads = 4;
  Opts.Config.Compress = Mode == 1;
  size_t Configs = 0, Interned = 0, CompressedBytes = 0;
  for (auto _ : State) {
    ExploreResult R = exploreAll(P, {initialConfiguration(Init)}, Opts);
    if (R.Stats.Truncated) {
      State.SkipWithError("Paxos/4 exploration truncated");
      return;
    }
    Configs = R.Stats.NumConfigurations;
    Interned = R.Engine.InternedConfigs;
    CompressedBytes = R.Engine.CompressedBytes;
    benchmark::DoNotOptimize(R);
  }
  State.counters["configs"] = static_cast<double>(Configs);
  State.counters["interned_configs"] = static_cast<double>(Interned);
  State.counters["compressed_bytes"] = static_cast<double>(CompressedBytes);
}

void BM_CompactPaxos(benchmark::State &State) {
  PaxosParams Params{State.range(0), State.range(1)};
  reportCompactExplore(State, makePaxosProgram(Params),
                       makePaxosInitialStore(Params), State.range(2));
}
BENCHMARK(BM_CompactPaxos)
    ->Args({2, 4, 0}) // raw arenas
    ->Args({2, 4, 1}) // compact (delta/varint) store
    ->Unit(benchmark::kMillisecond);

//===----------------------------------------------------------------------===//
// Tiered-store scale target: the same Paxos 2x4 exploration as
// BM_CompactPaxos mode 1, but with the compact store spilling sealed
// blocks to the mmap'd cold tier under a memory budget. The budget and
// spill directory come from the environment because the interesting
// budget is computed at runtime by tools/bench_engine.sh (half the
// unspilled run's peak RSS, capped to half the compact footprint so
// eviction provably happens). Counts must match the unspilled run
// exactly; the script asserts that and the <= 2.5x wall-time bound.
//===----------------------------------------------------------------------===//

void BM_SpillPaxos(benchmark::State &State) {
  const char *Budget = std::getenv("ISQ_SPILL_MEM_BUDGET");
  const char *Dir = std::getenv("ISQ_SPILL_DIR");
  if (!Budget || !Dir) {
    State.SkipWithError("set ISQ_SPILL_MEM_BUDGET (bytes) and ISQ_SPILL_DIR; "
                        "tools/bench_engine.sh derives them from the "
                        "unspilled run");
    return;
  }
  PaxosParams Params{State.range(0), State.range(1)};
  Program P = makePaxosProgram(Params);
  Store Init = makePaxosInitialStore(Params);
  ExploreOptions Opts;
  Opts.MaxConfigurations = 50'000'000;
  Opts.Config.Symmetry = true;
  Opts.Config.NumThreads = 4;
  Opts.Config.Compress = true;
  // One shard: the budget is global, and a single shard seals eviction
  // blocks fastest, so the cold tier is exercised hardest.
  Opts.Config.Shards = 1;
  Opts.Config.Spill = true;
  Opts.Config.SpillDir = Dir;
  Opts.Config.MemBudget = std::strtoull(Budget, nullptr, 10);
  size_t Configs = 0, Interned = 0, CompressedBytes = 0;
  uint64_t BytesHot = 0, BytesCold = 0, Evicted = 0, Faulted = 0;
  for (auto _ : State) {
    ExploreResult R = exploreAll(P, {initialConfiguration(Init)}, Opts);
    if (R.Stats.Truncated) {
      State.SkipWithError("Paxos/4 exploration truncated");
      return;
    }
    Configs = R.Stats.NumConfigurations;
    Interned = R.Engine.InternedConfigs;
    CompressedBytes = R.Engine.CompressedBytes;
    BytesHot = R.Engine.BytesHot;
    BytesCold = R.Engine.BytesCold;
    Evicted = R.Engine.BlocksEvicted;
    Faulted = R.Engine.BlocksFaulted;
    benchmark::DoNotOptimize(R);
  }
  State.counters["configs"] = static_cast<double>(Configs);
  State.counters["interned_configs"] = static_cast<double>(Interned);
  State.counters["compressed_bytes"] = static_cast<double>(CompressedBytes);
  State.counters["mem_budget"] = static_cast<double>(Opts.Config.MemBudget);
  State.counters["bytes_hot"] = static_cast<double>(BytesHot);
  State.counters["bytes_cold"] = static_cast<double>(BytesCold);
  State.counters["blocks_evicted"] = static_cast<double>(Evicted);
  State.counters["blocks_faulted"] = static_cast<double>(Faulted);
}
BENCHMARK(BM_SpillPaxos)
    ->Args({2, 4}) // 2 rounds x 4 acceptors, spilled under the budget
    ->Unit(benchmark::kMillisecond);

void BM_SymmetryTwoPhaseCommit(benchmark::State &State) {
  TwoPhaseCommitParams Params{State.range(0)};
  reportSymmetryExplore(State, makeTwoPhaseCommitProgram(Params),
                        makeTwoPhaseCommitInitialStore(Params),
                        State.range(1));
}
BENCHMARK(BM_SymmetryTwoPhaseCommit)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({5, 0}) // 5! = 120 permutations: the quotient must still win
    ->Args({5, 1})
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
