//===- bench/bench_paxos.cpp - Paxos case-study experiment (§5.2) -------------------===//
///
/// \file
/// The Paxos row of Table 1 in depth (the paper's most significant case
/// study): runs the full IS verification pipeline across instance sizes
/// (rounds × acceptors) and reports per-condition obligation counts,
/// universe sizes, and the state-count contrast between the asynchronous
/// protocol and its sequential reduction Paxos'.
///
//===----------------------------------------------------------------------===//

#include "explorer/Explorer.h"
#include "is/ISCheck.h"
#include "is/Sequentialize.h"
#include "protocols/Paxos.h"

#include <benchmark/benchmark.h>

using namespace isq;
using namespace isq::protocols;

namespace {

void BM_PaxosPipeline(benchmark::State &State) {
  PaxosParams Params{State.range(0), State.range(1)};
  Store Init = makePaxosInitialStore(Params);
  ISCheckReport Report;
  size_t UniverseSize = 0;
  for (auto _ : State) {
    ISApplication App = makePaxosIS(Params);
    ISUniverse U = ISUniverse::build(App, {{Init, {}}});
    UniverseSize = U.Configs.size();
    Report = checkIS(App, U);
  }
  State.counters["universe_configs"] = static_cast<double>(UniverseSize);
  State.counters["obligations_total"] =
      static_cast<double>(Report.totalObligations());
  State.counters["obligations_left_mover"] =
      static_cast<double>(Report.LeftMovers.obligations());
  State.counters["obligations_induction"] =
      static_cast<double>(Report.InductiveStep.obligations());
  State.counters["accepted"] = Report.ok() ? 1 : 0;
}
BENCHMARK(BM_PaxosPipeline)
    ->Args({1, 3})
    ->Args({2, 2})
    ->Args({2, 3})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_PaxosSequentialReduction(benchmark::State &State) {
  PaxosParams Params{State.range(0), State.range(1)};
  Store Init = makePaxosInitialStore(Params);
  ISApplication App = makePaxosIS(Params);
  Program PPrime = applyIS(App);
  size_t ConfigsP = 0, ConfigsS = 0, Outcomes = 0;
  bool Safe = true;
  for (auto _ : State) {
    ExploreResult RP = explore(App.P, initialConfiguration(Init));
    ExploreResult RS = explore(PPrime, initialConfiguration(Init));
    ConfigsP = RP.Stats.NumConfigurations;
    ConfigsS = RS.Stats.NumConfigurations;
    Outcomes = RS.TerminalStores.size();
    for (const Store &Final : RS.TerminalStores)
      Safe = Safe && checkPaxosSpec(Final, Params);
  }
  State.counters["configs_P"] = static_cast<double>(ConfigsP);
  State.counters["configs_Pprime"] = static_cast<double>(ConfigsS);
  State.counters["outcomes"] = static_cast<double>(Outcomes);
  State.counters["safe"] = Safe ? 1 : 0;
}
BENCHMARK(BM_PaxosSequentialReduction)
    ->Args({1, 3})
    ->Args({2, 2})
    ->Args({2, 3})
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
