//===- bench/bench_invariant_complexity.cpp - §2 invariant comparison ---------------===//
///
/// \file
/// Regenerates the paper's §2 motivation: proving the broadcast consensus
/// protocol with the flat "asynchrony-aware" inductive invariant (formula
/// (2)) versus the IS proof. The flat invariant must describe *every*
/// intermediate configuration of every interleaving — its instantiation
/// count grows as 2^n (one per subset D of nodes, per disjunct) — while
/// the IS artifacts only describe the 2n+1 prefixes of one fixed
/// schedule. Both proofs are checked mechanically; the counters report
/// the number of invariant instantiations versus IS sequential prefixes,
/// inductiveness obligations, and wall time.
///
//===----------------------------------------------------------------------===//

#include "explorer/Explorer.h"
#include "is/ISCheck.h"
#include "protocols/Broadcast.h"
#include "support/Timer.h"

#include <benchmark/benchmark.h>

using namespace isq;
using namespace isq::protocols;

namespace {

/// Does \p C satisfy invariant (2) of the paper (plus the untouched
/// initial-variable frame)?
bool satisfiesFlatInvariant(const Configuration &C,
                            const BroadcastParams &Params) {
  if (C.isFailure())
    return false;
  const Store &G = C.global();
  int64_t N = Params.NumNodes;
  int64_t Max = INT64_MIN;
  for (int64_t I = 1; I <= N; ++I)
    Max = std::max(Max, Params.value(I));

  auto ChannelIs = [&](int64_t I, const std::vector<int64_t> &Senders) {
    std::vector<Value> Msgs;
    for (int64_t J : Senders)
      Msgs.push_back(Value::integer(Params.value(J)));
    return G.get("CH").mapAt(Value::integer(I)) == Value::bag(Msgs);
  };
  auto Decided = [&](int64_t I) {
    const Value &D = G.get("decision").mapAt(Value::integer(I));
    return D.isSome() && D.getSome().getInt() == Max;
  };
  auto Undecided = [&](int64_t I) {
    return G.get("decision").mapAt(Value::integer(I)).isNone();
  };
  auto PaCount = [&](const char *Name, std::vector<Value> Args) {
    return C.pendingAsyncs().count(PendingAsync(Name, std::move(Args)));
  };

  // Disjunct 1: initial configuration with a single Main PA.
  {
    bool Ok = C.pendingAsyncs().size() == 1 && PaCount("Main", {}) == 1;
    for (int64_t I = 1; I <= N && Ok; ++I)
      Ok = ChannelIs(I, {}) && Undecided(I);
    if (Ok)
      return true;
  }
  // Disjunct 2: the nodes in D broadcast; everything else still pending.
  // Disjunct 3: all broadcast; the nodes in D collected and decided.
  for (uint64_t Mask = 0; Mask < (uint64_t(1) << N); ++Mask) {
    std::vector<int64_t> D, NotD;
    for (int64_t I = 1; I <= N; ++I)
      ((Mask >> (I - 1)) & 1 ? D : NotD).push_back(I);

    bool Ok2 = true;
    for (int64_t I = 1; I <= N && Ok2; ++I)
      Ok2 = ChannelIs(I, D) && Undecided(I);
    if (Ok2 && C.pendingAsyncs().size() ==
                   static_cast<uint64_t>(N + static_cast<int64_t>(
                                                 NotD.size()))) {
      bool PasOk = true;
      for (int64_t I : NotD)
        PasOk = PasOk && PaCount("Broadcast", {Value::integer(I)}) == 1;
      for (int64_t I = 1; I <= N; ++I)
        PasOk = PasOk && PaCount("Collect", {Value::integer(I)}) == 1;
      if (PasOk)
        return true;
    }

    std::vector<int64_t> All;
    for (int64_t I = 1; I <= N; ++I)
      All.push_back(I);
    bool Ok3 = true;
    for (int64_t I : NotD)
      Ok3 = Ok3 && ChannelIs(I, All) && Undecided(I);
    for (int64_t I : D)
      Ok3 = Ok3 && ChannelIs(I, {}) && Decided(I);
    if (Ok3 &&
        C.pendingAsyncs().size() == static_cast<uint64_t>(NotD.size())) {
      bool PasOk = true;
      for (int64_t I : NotD)
        PasOk = PasOk && PaCount("Collect", {Value::integer(I)}) == 1;
      if (PasOk)
        return true;
    }
  }
  return false;
}

/// Checks the flat invariant the classical way: every reachable
/// configuration satisfies it (covering: it is implied at initialization
/// and inductive along every transition of every interleaving), and the
/// terminal instantiation implies the agreement property. Returns the
/// number of obligations (configuration membership checks).
size_t checkFlatInvariantProof(const BroadcastParams &Params, bool &Ok) {
  Program P = makeBroadcastProgram(Params);
  ExploreResult R = explore(
      P, initialConfiguration(makeBroadcastInitialStore(Params)));
  Ok = !R.FailureReachable;
  size_t Obligations = 0;
  for (const Configuration &C : R.Reachable) {
    ++Obligations;
    Ok = Ok && satisfiesFlatInvariant(C, Params);
    if (C.isTerminating())
      Ok = Ok && checkBroadcastSpec(C.global(), Params);
  }
  return Obligations;
}

void BM_FlatInvariant(benchmark::State &State) {
  BroadcastParams Params{State.range(0), {}};
  bool Ok = false;
  size_t Obligations = 0;
  for (auto _ : State)
    Obligations = checkFlatInvariantProof(Params, Ok);
  State.counters["obligations"] = static_cast<double>(Obligations);
  // One instantiation per (disjunct, subset D): the artifact the user must
  // invent quantifies over all 2^n subsets, twice, plus the initial case.
  State.counters["invariant_instantiations"] =
      static_cast<double>(1 + 2 * (uint64_t(1) << Params.NumNodes));
  State.counters["verified"] = Ok ? 1 : 0;
}
BENCHMARK(BM_FlatInvariant)->DenseRange(2, 5)->Unit(benchmark::kMillisecond);

void BM_InductiveSequentialization(benchmark::State &State) {
  BroadcastParams Params{State.range(0), {}};
  size_t Obligations = 0;
  bool Ok = false;
  for (auto _ : State) {
    ISApplication App = makeBroadcastIS(Params);
    ISCheckReport Report =
        checkIS(App, {{makeBroadcastInitialStore(Params), {}}});
    Obligations = Report.totalObligations();
    Ok = Report.ok();
  }
  State.counters["obligations"] = static_cast<double>(Obligations);
  // The IS artifact describes only the prefixes of one schedule:
  // k = 0..n broadcasts, then l = 0..n collects.
  State.counters["invariant_instantiations"] =
      static_cast<double>(2 * Params.NumNodes + 1);
  State.counters["verified"] = Ok ? 1 : 0;
}
BENCHMARK(BM_InductiveSequentialization)
    ->DenseRange(2, 5)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
