//===- bench/bench_table1.cpp - Table 1 reproduction ------------------------------===//
///
/// \file
/// Regenerates the shape of the paper's Table 1 ("Examples verified with
/// IS"): for every protocol, the number of IS applications, the number of
/// verification obligations our checker discharges (the analogue of the
/// SMT queries behind the paper's "Time" column), and the wall-clock
/// verification time. Absolute times differ from the paper (explicit-state
/// finite-instance checking vs. Z3 on unbounded VCs); the shape to compare
/// is the per-row #IS column (must match the paper exactly) and the
/// relative cost ordering (Paxos most expensive, Ping-Pong cheapest).
///
//===----------------------------------------------------------------------===//

#include "bench/Table1.h"

#include "support/Format.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace isq;
using namespace isq::bench;

namespace {

void reportRow(benchmark::State &State, const Table1Row &Row) {
  State.counters["is_applications"] =
      static_cast<double>(Row.NumISApplications);
  State.counters["obligations"] = static_cast<double>(Row.Obligations);
  State.counters["accepted"] = Row.Accepted ? 1 : 0;
}

void BM_Table1(benchmark::State &State) {
  size_t Index = static_cast<size_t>(State.range(0));
  Table1Row Row;
  for (auto _ : State)
    Row = runTable1Row(Index);
  reportRow(State, Row);
  State.SetLabel(Row.Name);
}

} // namespace

// One iteration per row: a full verification pipeline is deterministic and
// the Paxos row runs for tens of seconds.
BENCHMARK(BM_Table1)
    ->DenseRange(0, static_cast<int>(numTable1Rows()) - 1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Also print the Table-1-shaped summary directly.
  std::printf("\n%s\n", renderTable1().c_str());
  return 0;
}
