//===- tests/reporting_test.cpp - Diagnostics and rendering tests -------------------===//
///
/// \file
/// The human-facing surfaces: configuration/transition/execution
/// rendering, the per-condition IS report (including its failure shape),
/// and the counterexample diagnostics the checkers produce — §5.1's
/// "targeted error messages for failed checks".
///
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "explorer/Explorer.h"
#include "is/ISCheck.h"
#include "protocols/Broadcast.h"

#include <gtest/gtest.h>

using namespace isq;
using namespace isq::testing;

TEST(ReportingTest, ConfigurationRendering) {
  PaMultiset Omega;
  Omega.insert(PendingAsync("Work", {Value::integer(2)}));
  Omega.insert(PendingAsync("Work", {Value::integer(2)}));
  Configuration C(xStore(7), Omega);
  std::string S = C.str();
  EXPECT_NE(S.find("x = 7"), std::string::npos) << S;
  EXPECT_NE(S.find("Work(2):x2"), std::string::npos) << S;
}

TEST(ReportingTest, TransitionRendering) {
  Transition T(xStore(1), {PendingAsync("Next", {})});
  std::string S = T.str();
  EXPECT_NE(S.find("x = 1"), std::string::npos) << S;
  EXPECT_NE(S.find("Next()"), std::string::npos) << S;
}

TEST(ReportingTest, ExecutionRendering) {
  Program P = makeIncrementProgram(2);
  auto Execs =
      enumerateExecutions(P, initialConfiguration(xStore(0)), 10, 10);
  ASSERT_FALSE(Execs.empty());
  const Execution &E = Execs[0];
  EXPECT_EQ(E.scheduleStr(), "Main(); Inc(); Inc()");
  std::string Verbose = E.str();
  EXPECT_NE(Verbose.find("--[Main()]-->"), std::string::npos) << Verbose;
  EXPECT_NE(Verbose.find("x = 2"), std::string::npos) << Verbose;
}

TEST(ReportingTest, FailureTraceEndsInFail) {
  Program P = makeConditionalFailProgram();
  ExploreResult R = explore(P, initialConfiguration(xStore(3)));
  ASSERT_TRUE(R.FailureTrace.has_value());
  std::string S = R.FailureTrace->str();
  EXPECT_NE(S.find("FAIL"), std::string::npos) << S;
}

TEST(ReportingTest, AcceptedReportShape) {
  using namespace isq::protocols;
  BroadcastParams Params{2, {}};
  ISApplication App = makeBroadcastIS(Params);
  ISCheckReport Report =
      checkIS(App, {{makeBroadcastInitialStore(Params), {}}});
  std::string S = Report.str();
  EXPECT_NE(S.find("=> ACCEPTED"), std::string::npos) << S;
  EXPECT_NE(S.find("(I3) induction"), std::string::npos) << S;
  EXPECT_NE(S.find("(CO) cooperation"), std::string::npos) << S;
  // Every condition line reports its obligation count.
  EXPECT_NE(S.find("obligations"), std::string::npos) << S;
}

TEST(ReportingTest, RejectedReportNamesTheFailingCondition) {
  using namespace isq::protocols;
  BroadcastParams Params{2, {}};
  ISApplication App = makeBroadcastIS(Params);
  App.Abstractions.clear(); // Collect's blocking receive breaks (LM)
  ISCheckReport Report =
      checkIS(App, {{makeBroadcastInitialStore(Params), {}}});
  std::string S = Report.str();
  EXPECT_NE(S.find("=> REJECTED"), std::string::npos) << S;
  EXPECT_NE(S.find("non-blocking violated"), std::string::npos)
      << "the diagnostic points at the precise mover condition:\n" << S;
  EXPECT_NE(S.find("Collect("), std::string::npos)
      << "the diagnostic names the offending pending async:\n" << S;
}

TEST(ReportingTest, InductionFailureNamesTheContext) {
  using namespace isq::protocols;
  // Wrong elimination order: the CollectAbs gate cannot be discharged.
  BroadcastParams Params{2, {}};
  ISApplication App = makeBroadcastIS(Params);
  App.Choice = ISApplication::chooseInOrder(
      {Symbol::get("Collect"), Symbol::get("Broadcast")});
  ISCheckReport Report =
      checkIS(App, {{makeBroadcastInitialStore(Params), {}}});
  std::string S = Report.InductiveStep.str();
  EXPECT_NE(S.find("gate of α(Collect)"), std::string::npos) << S;
  EXPECT_NE(S.find("store="), std::string::npos)
      << "counterexample store included:\n" << S;
}

TEST(ReportingTest, ObligationTotalsAggregate) {
  using namespace isq::protocols;
  BroadcastParams Params{2, {}};
  ISApplication App = makeBroadcastIS(Params);
  ISCheckReport Report =
      checkIS(App, {{makeBroadcastInitialStore(Params), {}}});
  size_t Sum = Report.SideConditions.obligations() +
               Report.AbstractionRefinement.obligations() +
               Report.BaseCase.obligations() +
               Report.Conclusion.obligations() +
               Report.InductiveStep.obligations() +
               Report.LeftMovers.obligations() +
               Report.Cooperation.obligations();
  EXPECT_EQ(Report.totalObligations(), Sum);
  EXPECT_GT(Sum, 0u);
}
