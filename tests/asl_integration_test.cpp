//===- tests/asl_integration_test.cpp - ASL end-to-end with the IS rule -------------===//
///
/// \file
/// The frontend story end to end: the broadcast consensus protocol of
/// Fig. 1-② written in ASL, compiled to gated atomic actions, explored,
/// and verified with the IS proof rule (schedule-derived invariant plus a
/// CollectAbs-style abstraction supplied over the compiled actions).
///
//===----------------------------------------------------------------------===//

#include "explorer/Explorer.h"
#include "is/ISCheck.h"
#include "is/Sequentialize.h"
#include "lang/Compile.h"
#include "protocols/ScheduleInvariant.h"
#include "refine/Refinement.h"

#include <gtest/gtest.h>

using namespace isq;
using namespace isq::asl;

namespace {

const char *BroadcastAsl = R"(
// Broadcast consensus (Fig. 1 of the paper), in ASL.
const n: int;

var value: map<int, int> := map i in 1 .. n : i;
var decision: map<int, option<int>> := map i in 1 .. n : none;
var CH: map<int, bag<int>> := map i in 1 .. n : {};

action Main() {
  for i in 1 .. n {
    async Broadcast(i);
    async Collect(i);
  }
}

action Broadcast(i: int) {
  for j in 1 .. n {
    CH[j] := insert(CH[j], value[i]);
  }
}

action Collect(i: int) {
  await size(CH[i]) >= n;
  choose vs in sub_bags(CH[i], n);
  CH[i] := diff(CH[i], vs);
  decision[i] := some(max(vs));
}
)";

CompiledModule compileBroadcast(int64_t N) {
  std::vector<Diagnostic> Diags;
  auto C = compileModule(BroadcastAsl, {{"n", N}}, Diags);
  EXPECT_TRUE(C.has_value()) << (Diags.empty() ? "" : Diags[0].str());
  return C ? std::move(*C) : CompiledModule();
}

bool agreementHolds(const Store &Final, int64_t N) {
  for (int64_t I = 1; I <= N; ++I) {
    const Value &D = Final.get("decision").mapAt(Value::integer(I));
    if (D.isNone() || D.getSome().getInt() != N)
      return false;
  }
  return true;
}

/// The IS application for the compiled module: schedule-derived invariant
/// (Broadcast 1..n, then Collect 1..n) and a CollectAbs abstraction whose
/// gate asserts the sequential-context facts of Fig. 1-④.
ISApplication makeAslBroadcastIS(const CompiledModule &C, int64_t N) {
  protocols::RankFn Rank =
      [](const PendingAsync &PA) -> std::optional<std::vector<int64_t>> {
    if (PA.Action == Symbol::get("Broadcast"))
      return std::vector<int64_t>{0, PA.Args[0].getInt()};
    if (PA.Action == Symbol::get("Collect"))
      return std::vector<int64_t>{1, PA.Args[0].getInt()};
    return std::nullopt;
  };
  ISApplication App;
  App.P = C.P;
  App.M = Program::mainSymbol();
  App.E = {Symbol::get("Broadcast"), Symbol::get("Collect")};
  App.Invariant = protocols::makeScheduleInvariant("AslBroadcastInv",
                                                   App.P, App.M, Rank);
  App.Choice = protocols::chooseMinRank(Rank);
  App.Abstractions.emplace(
      Symbol::get("Collect"),
      Action("CollectAbs", 1,
             [N](const GateContext &Ctx) {
               for (const auto &[PA, Count] :
                    Ctx.Omega.entries()) {
                 (void)Count;
                 if (PA.Action == Symbol::get("Broadcast"))
                   return false;
               }
               return Ctx.Global.get("CH")
                          .mapAt(Ctx.Args[0])
                          .bagSize() >= static_cast<uint64_t>(N);
             },
             [P = C.P](const Store &G, const std::vector<Value> &Args) {
               return P.action("Collect").transitions(G, Args);
             },
             /*GateReadsOmega=*/true));
  App.WfMeasure = Measure::pendingAsyncCount();
  return App;
}

} // namespace

TEST(AslIntegrationTest, CompiledProtocolReachesAgreement) {
  int64_t N = 3;
  CompiledModule C = compileBroadcast(N);
  ExploreResult R = explore(C.P, initialConfiguration(C.InitialStore));
  EXPECT_FALSE(R.FailureReachable);
  EXPECT_TRUE(R.Deadlocks.empty());
  ASSERT_FALSE(R.TerminalStores.empty());
  for (const Store &Final : R.TerminalStores)
    EXPECT_TRUE(agreementHolds(Final, N));
}

TEST(AslIntegrationTest, CollectBlocksUntilChannelFull) {
  CompiledModule C = compileBroadcast(2);
  Configuration C0 = initialConfiguration(C.InitialStore);
  Configuration C1 =
      stepPendingAsync(C.P, C0, PendingAsync("Main", {}))[0];
  EXPECT_TRUE(stepPendingAsync(C.P, C1,
                               PendingAsync("Collect", {Value::integer(1)}))
                  .empty());
}

TEST(AslIntegrationTest, ISAcceptsCompiledProtocol) {
  int64_t N = 3;
  CompiledModule C = compileBroadcast(N);
  ISApplication App = makeAslBroadcastIS(C, N);
  ISCheckReport Report = checkIS(App, {{C.InitialStore, {}}});
  EXPECT_TRUE(Report.ok()) << Report.str();
}

TEST(AslIntegrationTest, SequentializedCompiledProtocol) {
  int64_t N = 3;
  CompiledModule C = compileBroadcast(N);
  ISApplication App = makeAslBroadcastIS(C, N);
  ASSERT_TRUE(checkIS(App, {{C.InitialStore, {}}}).ok());
  Program PPrime = applyIS(App);
  ExploreResult R = explore(PPrime, initialConfiguration(C.InitialStore));
  EXPECT_EQ(R.Stats.NumConfigurations, 2u);
  ASSERT_EQ(R.TerminalStores.size(), 1u);
  EXPECT_TRUE(agreementHolds(R.TerminalStores[0], N));
  EXPECT_TRUE(checkProgramRefinement(C.P, PPrime,
                                     {{C.InitialStore, {}}})
                  .ok());
}

TEST(AslIntegrationTest, MissingAbstractionRejectedForCompiledProtocol) {
  int64_t N = 2;
  CompiledModule C = compileBroadcast(N);
  ISApplication App = makeAslBroadcastIS(C, N);
  App.Abstractions.clear();
  ISCheckReport Report = checkIS(App, {{C.InitialStore, {}}});
  EXPECT_FALSE(Report.ok());
  EXPECT_FALSE(Report.LeftMovers.ok()) << Report.str();
}

TEST(AslIntegrationTest, BuggyAssertionSurfacesAsFailure) {
  // A compiled protocol with a wrong assertion: exploration finds the
  // failing execution.
  const char *Bad = R"(
const n: int;
var x: int := 0;
action Main() {
  for i in 1 .. n { async Inc(); }
}
action Inc() {
  assert x < 1;   // wrong for n >= 2
  x := x + 1;
}
)";
  std::vector<Diagnostic> Diags;
  auto C = compileModule(Bad, {{"n", 2}}, Diags);
  ASSERT_TRUE(C.has_value()) << (Diags.empty() ? "" : Diags[0].str());
  ExploreResult R = explore(C->P, initialConfiguration(C->InitialStore));
  EXPECT_TRUE(R.FailureReachable);
  ASSERT_TRUE(R.FailureTrace.has_value());
  EXPECT_EQ(R.FailureTrace->Steps.back().Executed.Action.str(), "Inc");
}
