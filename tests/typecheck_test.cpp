//===- tests/typecheck_test.cpp - ASL type checker tests -----------------------------===//

#include "lang/Parser.h"
#include "lang/TypeCheck.h"

#include <gtest/gtest.h>

using namespace isq::asl;

namespace {

void checkOk(const std::string &Source) {
  std::vector<Diagnostic> Diags;
  auto M = parseModule(Source, Diags);
  ASSERT_TRUE(M.has_value()) << (Diags.empty() ? "" : Diags[0].str());
  EXPECT_TRUE(typeCheck(*M, Diags))
      << (Diags.empty() ? "" : Diags[0].str());
}

void checkFails(const std::string &Source, const std::string &Fragment) {
  std::vector<Diagnostic> Diags;
  auto M = parseModule(Source, Diags);
  ASSERT_TRUE(M.has_value()) << "test expects a parseable module";
  EXPECT_FALSE(typeCheck(*M, Diags)) << "expected a type error";
  bool Found = false;
  for (const Diagnostic &D : Diags)
    Found = Found || D.Message.find(Fragment) != std::string::npos;
  EXPECT_TRUE(Found) << "no diagnostic mentioning '" << Fragment
                     << "'; got: "
                     << (Diags.empty() ? "<none>" : Diags[0].str());
}

} // namespace

TEST(TypeCheckTest, WellTypedModule) {
  checkOk("const n: int;\n"
          "var CH: map<int, bag<int>> := map i in 1 .. n : {};\n"
          "var dec: map<int, option<int>> := map i in 1 .. n : none;\n"
          "action Main() {\n"
          "  for i in 1 .. n { async Collect(i); }\n"
          "}\n"
          "action Collect(i: int) {\n"
          "  await size(CH[i]) >= n;\n"
          "  choose vs in sub_bags(CH[i], n);\n"
          "  dec[i] := some(max(vs));\n"
          "}\n");
}

TEST(TypeCheckTest, EmptyLiteralNeedsContext) {
  checkFails("action A() { assert {} == {}; }",
             "cannot infer the type of an empty collection");
}

TEST(TypeCheckTest, EmptyLiteralAgainstDeclaredType) {
  checkOk("var s: set<int> := {};\n"
          "var q: seq<bool> := [];\n"
          "action A() { s := {}; }\n");
}

TEST(TypeCheckTest, AssignmentTypeMismatch) {
  checkFails("var x: int := 0;\naction A() { x := true; }",
             "expected int, got bool");
}

TEST(TypeCheckTest, LocalsAreImmutable) {
  checkFails("action A(i: int) { i := 3; }", "locals are immutable");
}

TEST(TypeCheckTest, UnknownVariable) {
  checkFails("action A() { assert y == 0; }", "unknown variable 'y'");
}

TEST(TypeCheckTest, IndexingNonMap) {
  checkFails("var x: int := 0;\naction A() { assert x[1] == 0; }",
             "indexing requires a map");
}

TEST(TypeCheckTest, TooManyIndicesInAssignment) {
  checkFails("var x: map<int, int> := {};\naction A() { x[1][2] := 3; }",
             "too many indices");
}

TEST(TypeCheckTest, AsyncArityChecked) {
  checkFails("action A(i: int) { skip; }\naction Main() { async A(); }",
             "1 expected");
}

TEST(TypeCheckTest, AsyncArgumentTypesChecked) {
  checkFails("action A(i: int) { skip; }\n"
             "action Main() { async A(true); }",
             "expected int, got bool");
}

TEST(TypeCheckTest, AsyncUnknownAction) {
  checkFails("action Main() { async Nope(); }", "unknown action");
}

TEST(TypeCheckTest, ChooseBindsElementType) {
  checkOk("var s: set<int> := {};\n"
          "var x: int := 0;\n"
          "action A() { choose e in s; x := e; }\n");
  checkFails("var s: set<bool> := {};\n"
             "var x: int := 0;\n"
             "action A() { choose e in s; x := e; }\n",
             "expected int, got bool");
}

TEST(TypeCheckTest, ChooseOverNonCollection) {
  checkFails("var x: int := 0;\naction A() { choose e in x; skip; }",
             "choose requires a set, bag, or seq");
}

TEST(TypeCheckTest, ChooseShadowingRejected) {
  checkFails("var s: set<int> := {};\n"
             "action A(e: int) { choose e in s; skip; }",
             "shadows an existing name");
}

TEST(TypeCheckTest, BuiltinSignatures) {
  checkOk("var b: bag<int> := {};\n"
          "var s: set<int> := {};\n"
          "var q: seq<int> := [];\n"
          "var m: map<int, int> := {};\n"
          "var x: int := 0;\n"
          "var f: bool := false;\n"
          "action A() {\n"
          "  x := size(b) + size(s) + size(q) + size(m);\n"
          "  f := contains(b, 1) && contains(s, 2) && has_key(m, 3);\n"
          "  b := insert(b, 1); s := erase(s, 2);\n"
          "  x := max(b) + min(s) + front(q);\n"
          "  q := push_back(pop_front(q), 9);\n"
          "  s := keys(m);\n"
          "}\n");
}

TEST(TypeCheckTest, BuiltinMisuse) {
  checkFails("var x: int := 0;\naction A() { x := size(x); }",
             "size() requires a collection");
  checkFails("var q: seq<int> := [];\naction A() { assert max(q) == 0; }",
             "max() requires set<int> or bag<int>");
  checkFails("var b: bag<int> := {};\naction A() { b := sub_bags(b, 2); }",
             "expected bag<int>, got set<bag<int>>");
}

TEST(TypeCheckTest, UnknownBuiltin) {
  checkFails("action A() { assert frobnicate(1) == 2; }",
             "unknown builtin");
}

TEST(TypeCheckTest, AwaitRequiresBool) {
  checkFails("var x: int := 0;\naction A() { await x; }",
             "expected bool, got int");
}

TEST(TypeCheckTest, DuplicateDeclarationsRejected) {
  checkFails("var x: int := 0;\nvar x: int := 1;", "duplicate variable");
  checkFails("action A() { skip; }\naction A() { skip; }",
             "duplicate action");
}

TEST(TypeCheckTest, OptionOperations) {
  checkOk("var o: option<int> := none;\n"
          "var x: int := 0;\n"
          "action A() {\n"
          "  if is_some(o) { x := the(o); }\n"
          "  o := some(x + 1);\n"
          "}\n");
  checkFails("var o: option<int> := none;\n"
             "action A() { o := some(true); }",
             "expected int, got bool");
}
