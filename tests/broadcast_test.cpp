//===- tests/broadcast_test.cpp - Broadcast consensus (Fig. 1) tests -------------===//

#include "explorer/Explorer.h"
#include "is/ISCheck.h"
#include "is/Sequentialize.h"
#include "protocols/Broadcast.h"
#include "refine/Refinement.h"

#include <gtest/gtest.h>

using namespace isq;
using namespace isq::protocols;

namespace {

InitialCondition init(const BroadcastParams &Params) {
  return {makeBroadcastInitialStore(Params), {}};
}

} // namespace

TEST(BroadcastTest, ProtocolTerminatesWithAgreement) {
  BroadcastParams Params{3, {5, 9, 2}};
  Program P = makeBroadcastProgram(Params);
  ExploreResult R =
      explore(P, initialConfiguration(makeBroadcastInitialStore(Params)));
  EXPECT_FALSE(R.FailureReachable);
  EXPECT_TRUE(R.Deadlocks.empty());
  ASSERT_FALSE(R.TerminalStores.empty());
  for (const Store &Final : R.TerminalStores)
    EXPECT_TRUE(checkBroadcastSpec(Final, Params));
}

TEST(BroadcastTest, CollectBlocksUntilChannelFull) {
  BroadcastParams Params{2, {}};
  Program P = makeBroadcastProgram(Params);
  Configuration C0 =
      initialConfiguration(makeBroadcastInitialStore(Params));
  Configuration C1 = stepPendingAsync(P, C0, PendingAsync("Main", {}))[0];
  // Collect(1) is blocked: only one message would be present even after
  // one broadcast; with none it is certainly blocked.
  EXPECT_TRUE(
      stepPendingAsync(P, C1, PendingAsync("Collect", {Value::integer(1)}))
          .empty());
}

TEST(BroadcastTest, OneShotISIsAccepted) {
  BroadcastParams Params{3, {}};
  ISApplication App = makeBroadcastIS(Params);
  ISCheckReport Report = checkIS(App, {init(Params)});
  EXPECT_TRUE(Report.ok()) << Report.str();
}

TEST(BroadcastTest, OneShotISWithDistinctValues) {
  BroadcastParams Params{3, {7, 3, 11}};
  ISApplication App = makeBroadcastIS(Params);
  EXPECT_TRUE(checkIS(App, {init(Params)}).ok());
}

TEST(BroadcastTest, SequentializedProgramHasSingleSchedule) {
  BroadcastParams Params{3, {}};
  ISApplication App = makeBroadcastIS(Params);
  Program PPrime = applyIS(App);
  ExploreResult R = explore(
      PPrime, initialConfiguration(makeBroadcastInitialStore(Params)));
  EXPECT_EQ(R.Stats.NumConfigurations, 2u)
      << "Main' reaches the final state in one atomic step";
  ASSERT_EQ(R.TerminalStores.size(), 1u);
  EXPECT_TRUE(checkBroadcastSpec(R.TerminalStores[0], Params));
}

TEST(BroadcastTest, FormalGuaranteePRefinesPPrime) {
  BroadcastParams Params{2, {4, 6}};
  ISApplication App = makeBroadcastIS(Params);
  ASSERT_TRUE(checkIS(App, {init(Params)}).ok());
  EXPECT_TRUE(
      checkProgramRefinement(App.P, applyIS(App), {init(Params)}).ok());
}

TEST(BroadcastTest, IteratedProofMatchesPaperSection53) {
  // §5.3: first eliminate Broadcast, then Collect — 2 IS applications,
  // where the second CollectAbs needs no pending-Broadcast gate.
  BroadcastParams Params{3, {}};
  ISApplication Stage1 = makeBroadcastStage1IS(Params);
  ISCheckReport R1 = checkIS(Stage1, {init(Params)});
  EXPECT_TRUE(R1.ok()) << R1.str();

  Program After1 = applyIS(Stage1);
  ISApplication Stage2 = makeBroadcastStage2IS(Params, After1);
  ISCheckReport R2 = checkIS(Stage2, {init(Params)});
  EXPECT_TRUE(R2.ok()) << R2.str();

  Program After2 = applyIS(Stage2);
  ExploreResult R = explore(
      After2, initialConfiguration(makeBroadcastInitialStore(Params)));
  ASSERT_EQ(R.TerminalStores.size(), 1u);
  EXPECT_TRUE(checkBroadcastSpec(R.TerminalStores[0], Params));
  // End-to-end: the original program refines the fully sequentialized one.
  EXPECT_TRUE(checkProgramRefinement(makeBroadcastProgram(Params), After2,
                                     {init(Params)})
                  .ok());
}

TEST(BroadcastTest, MissingAbstractionIsRejected) {
  // Without CollectAbs, Collect is not a left mover (blocking receive),
  // so (LM) must fail.
  BroadcastParams Params{2, {}};
  ISApplication App = makeBroadcastIS(Params);
  App.Abstractions.clear();
  ISCheckReport Report = checkIS(App, {init(Params)});
  EXPECT_FALSE(Report.ok());
  EXPECT_FALSE(Report.LeftMovers.ok()) << Report.str();
}

TEST(BroadcastTest, WrongChoiceOrderIsRejected) {
  // Eliminating Collect before Broadcast violates the inductive step: the
  // gate of CollectAbs does not hold while Broadcasts are pending.
  BroadcastParams Params{2, {}};
  ISApplication App = makeBroadcastIS(Params);
  App.Choice = ISApplication::chooseInOrder(
      {Symbol::get("Collect"), Symbol::get("Broadcast")});
  ISCheckReport Report = checkIS(App, {init(Params)});
  EXPECT_FALSE(Report.ok());
  EXPECT_FALSE(Report.InductiveStep.ok()) << Report.str();
}

TEST(BroadcastTest, SpecPredicateDetectsDisagreement) {
  BroadcastParams Params{2, {1, 2}};
  Store Bad = makeBroadcastInitialStore(Params);
  EXPECT_FALSE(checkBroadcastSpec(Bad, Params)) << "undecided nodes";
  Value D = Bad.get("decision")
                .mapSet(Value::integer(1), Value::some(Value::integer(2)))
                .mapSet(Value::integer(2), Value::some(Value::integer(1)));
  EXPECT_FALSE(checkBroadcastSpec(Bad.set("decision", D), Params));
  Value Good = Bad.get("decision")
                   .mapSet(Value::integer(1), Value::some(Value::integer(2)))
                   .mapSet(Value::integer(2), Value::some(Value::integer(2)));
  EXPECT_TRUE(checkBroadcastSpec(Bad.set("decision", Good), Params));
}

TEST(BroadcastTest, ScalesToFourNodes) {
  BroadcastParams Params{4, {}};
  ISApplication App = makeBroadcastIS(Params);
  EXPECT_TRUE(checkIS(App, {init(Params)}).ok());
}
