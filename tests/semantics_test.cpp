//===- tests/semantics_test.cpp - Action/Program semantics tests -------------===//

#include "TestPrograms.h"
#include "semantics/Program.h"

#include <gtest/gtest.h>

using namespace isq;
using namespace isq::testing;

TEST(ActionTest, GateAndTransitions) {
  Action Inc = updateX("IncUnit", [](int64_t X) { return X + 1; });
  EXPECT_EQ(Inc.arity(), 0u);
  EXPECT_TRUE(Inc.evalGate(xStore(0), {}, PaMultiset()));
  auto Ts = Inc.transitions(xStore(4), {});
  ASSERT_EQ(Ts.size(), 1u);
  EXPECT_EQ(Ts[0].Global.get("x").getInt(), 5);
  EXPECT_TRUE(Ts[0].Created.empty());
}

TEST(ActionTest, WithNameKeepsBehavior) {
  Action Inc = updateX("IncOrig", [](int64_t X) { return X + 1; });
  Action Renamed = Inc.withName("IncCopy");
  EXPECT_EQ(Renamed.name().str(), "IncCopy");
  EXPECT_EQ(Renamed.transitions(xStore(1), {})[0].Global.get("x").getInt(),
            2);
}

TEST(ProgramTest, ActionLookupAndSubstitution) {
  Program P = makeIncrementProgram(2);
  EXPECT_TRUE(P.hasMain());
  EXPECT_TRUE(P.hasAction("Inc"));
  EXPECT_FALSE(P.hasAction("Nonexistent"));
  EXPECT_EQ(P.actionNames().size(), 2u);

  // P[Inc ↦ dec] replaces behavior under the same name.
  Program P2 =
      P.withAction(updateX("Inc", [](int64_t X) { return X - 1; }));
  Configuration C(xStore(0), [] {
    PaMultiset O;
    O.insert(PendingAsync("Inc", {}));
    return O;
  }());
  auto Succs = stepPendingAsync(P2, C, PendingAsync("Inc", {}));
  ASSERT_EQ(Succs.size(), 1u);
  EXPECT_EQ(Succs[0].global().get("x").getInt(), -1);
}

TEST(SemanticsTest, InitialConfiguration) {
  Configuration C = initialConfiguration(xStore(0));
  EXPECT_EQ(C.pendingAsyncs().size(), 1u);
  EXPECT_TRUE(C.pendingAsyncs().contains(
      PendingAsync(Program::mainSymbol(), {})));
}

TEST(SemanticsTest, StepExecutesAndCreates) {
  Program P = makeIncrementProgram(3);
  Configuration C0 = initialConfiguration(xStore(0));
  auto Succs = stepPendingAsync(P, C0, PendingAsync("Main", {}));
  ASSERT_EQ(Succs.size(), 1u);
  const Configuration &C1 = Succs[0];
  EXPECT_EQ(C1.pendingAsyncs().size(), 3u);
  EXPECT_EQ(C1.pendingAsyncs().count(PendingAsync("Inc", {})), 3u);
}

TEST(SemanticsTest, GateFailureYieldsFailureConfiguration) {
  Program P = makeConditionalFailProgram();
  Configuration C0 = initialConfiguration(xStore(7));
  auto AfterMain = stepPendingAsync(P, C0, PendingAsync("Main", {}));
  ASSERT_EQ(AfterMain.size(), 1u);
  auto AfterCheck =
      stepPendingAsync(P, AfterMain[0], PendingAsync("Check", {}));
  ASSERT_EQ(AfterCheck.size(), 1u);
  EXPECT_TRUE(AfterCheck[0].isFailure());
}

TEST(SemanticsTest, BlockedActionHasNoSuccessors) {
  Program P = makeBlockingProgram();
  Configuration C0 = initialConfiguration(xStore(0));
  auto AfterMain = stepPendingAsync(P, C0, PendingAsync("Main", {}));
  ASSERT_EQ(AfterMain.size(), 1u);
  EXPECT_TRUE(successors(P, AfterMain[0]).empty());
  EXPECT_TRUE(hasBlockedPendingAsync(P, AfterMain[0]));
}

TEST(SemanticsTest, SuccessorsEnumerateAllSchedulablePas) {
  Program P = makeIncrementProgram(2);
  Configuration C0 = initialConfiguration(xStore(0));
  auto AfterMain = stepPendingAsync(P, C0, PendingAsync("Main", {}));
  // Two identical Inc PAs: scheduling either is symmetric, one entry.
  auto Succs = successors(P, AfterMain[0]);
  ASSERT_EQ(Succs.size(), 1u);
  EXPECT_EQ(Succs[0].global().get("x").getInt(), 1);
  EXPECT_EQ(Succs[0].pendingAsyncs().size(), 1u);
}

TEST(SemanticsTest, OmegaObservingGate) {
  // A gate that requires a Helper PA to be pending (CIVL mirror style).
  Program P;
  P.addAction(Action("Main", 0, Action::alwaysEnabled(),
                     [](const Store &G, const std::vector<Value> &) {
                       Transition T(G);
                       T.Created.emplace_back("Guarded",
                                              std::vector<Value>{});
                       T.Created.emplace_back("Helper",
                                              std::vector<Value>{});
                       return std::vector<Transition>{std::move(T)};
                     }));
  P.addAction(Action("Guarded", 0,
                     [](const GateContext &Ctx) {
                       return Ctx.Omega.contains(
                           PendingAsync("Helper", {}));
                     },
                     [](const Store &G, const std::vector<Value> &) {
                       return std::vector<Transition>{Transition(G)};
                     },
                     /*GateReadsOmega=*/true));
  P.addAction(Action("Helper", 0, Action::alwaysEnabled(),
                     [](const Store &G, const std::vector<Value> &) {
                       return std::vector<Transition>{Transition(G)};
                     }));
  Configuration C0 = initialConfiguration(xStore(0));
  auto C1 = stepPendingAsync(P, C0, PendingAsync("Main", {}))[0];
  // Guarded succeeds while Helper is pending.
  auto G1 = stepPendingAsync(P, C1, PendingAsync("Guarded", {}));
  ASSERT_EQ(G1.size(), 1u);
  EXPECT_FALSE(G1[0].isFailure());
  // After Helper runs, Guarded's gate fails.
  auto H1 = stepPendingAsync(P, C1, PendingAsync("Helper", {}));
  auto G2 = stepPendingAsync(P, H1[0], PendingAsync("Guarded", {}));
  ASSERT_EQ(G2.size(), 1u);
  EXPECT_TRUE(G2[0].isFailure());
}
