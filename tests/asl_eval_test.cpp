//===- tests/asl_eval_test.cpp - ASL evaluator/compiler tests --------------------===//

#include "explorer/Explorer.h"
#include "lang/Compile.h"

#include <gtest/gtest.h>

using namespace isq;
using namespace isq::asl;

namespace {

CompiledModule compileOk(const std::string &Source,
                         std::map<std::string, int64_t> Consts = {}) {
  std::vector<Diagnostic> Diags;
  auto Compiled = compileModule(Source, Consts, Diags);
  EXPECT_TRUE(Compiled.has_value())
      << (Diags.empty() ? "" : Diags[0].str());
  return Compiled ? std::move(*Compiled) : CompiledModule();
}

} // namespace

TEST(AslEvalTest, InitialStoreFromInitializers) {
  CompiledModule C = compileOk("const n: int;\n"
                               "var x: int := n * 2;\n"
                               "var m: map<int, int> := map i in 1 .. n : "
                               "i + x;\n",
                               {{"n", 3}});
  EXPECT_EQ(C.InitialStore.get("x").getInt(), 6);
  EXPECT_EQ(C.InitialStore.get("m").mapAt(Value::integer(2)).getInt(), 8);
}

TEST(AslEvalTest, LaterInitializersSeeEarlierVars) {
  CompiledModule C =
      compileOk("var a: int := 5;\nvar b: int := a + 1;\n");
  EXPECT_EQ(C.InitialStore.get("b").getInt(), 6);
}

TEST(AslEvalTest, DeterministicActionTransition) {
  CompiledModule C = compileOk("var x: int := 0;\n"
                               "action Main() { x := x + 1; }\n");
  const Action &A = C.P.action("Main");
  auto Ts = A.transitions(C.InitialStore, {});
  ASSERT_EQ(Ts.size(), 1u);
  EXPECT_EQ(Ts[0].Global.get("x").getInt(), 1);
}

TEST(AslEvalTest, AssertBecomesGate) {
  CompiledModule C = compileOk("var x: int := 0;\n"
                               "action Main() { assert x == 0; }\n");
  const Action &A = C.P.action("Main");
  EXPECT_TRUE(A.evalGate(C.InitialStore, {}, PaMultiset()));
  Store Bad = C.InitialStore.set("x", Value::integer(1));
  EXPECT_FALSE(A.evalGate(Bad, {}, PaMultiset()));
}

TEST(AslEvalTest, AwaitBlocksTransitions) {
  CompiledModule C = compileOk("var x: int := 0;\n"
                               "action Main() { await x > 0; x := 0; }\n");
  const Action &A = C.P.action("Main");
  EXPECT_TRUE(A.transitions(C.InitialStore, {}).empty()) << "blocked";
  EXPECT_TRUE(A.evalGate(C.InitialStore, {}, PaMultiset()))
      << "blocked is not failed";
  Store Ready = C.InitialStore.set("x", Value::integer(1));
  EXPECT_EQ(A.transitions(Ready, {}).size(), 1u);
}

TEST(AslEvalTest, ChooseBranchesTransitions) {
  CompiledModule C =
      compileOk("var s: set<int> := insert(insert({}, 1), 2);\n"
                "var x: int := 0;\n"
                "action Main() { choose e in s; x := e; }\n");
  auto Ts = C.P.action("Main").transitions(C.InitialStore, {});
  ASSERT_EQ(Ts.size(), 2u);
}

TEST(AslEvalTest, AsyncCreatesPendingAsyncs) {
  CompiledModule C = compileOk("const n: int;\n"
                               "action Main() {\n"
                               "  for i in 1 .. n { async Work(i); }\n"
                               "}\n"
                               "action Work(i: int) { skip; }\n",
                               {{"n", 3}});
  auto Ts = C.P.action("Main").transitions(C.InitialStore, {});
  ASSERT_EQ(Ts.size(), 1u);
  EXPECT_EQ(Ts[0].Created.size(), 3u);
  EXPECT_EQ(Ts[0].Created[0].Action.str(), "Work");
}

TEST(AslEvalTest, IfElseBothBranches) {
  CompiledModule C = compileOk(
      "var x: int := 0;\n"
      "action Main(i: int) { if i > 0 { x := 1; } else { x := 2; } }\n");
  auto T1 = C.P.action("Main").transitions(C.InitialStore,
                                           {Value::integer(5)});
  EXPECT_EQ(T1[0].Global.get("x").getInt(), 1);
  auto T2 = C.P.action("Main").transitions(C.InitialStore,
                                           {Value::integer(-5)});
  EXPECT_EQ(T2[0].Global.get("x").getInt(), 2);
}

TEST(AslEvalTest, NestedMapAssignment) {
  CompiledModule C = compileOk(
      "var m: map<int, map<int, int>> := map i in 1 .. 2 : map j in 1 .. 2 "
      ": 0;\n"
      "action Main() { m[1][2] := 9; }\n");
  auto Ts = C.P.action("Main").transitions(C.InitialStore, {});
  EXPECT_EQ(Ts[0]
                .Global.get("m")
                .mapAt(Value::integer(1))
                .mapAt(Value::integer(2))
                .getInt(),
            9);
  EXPECT_EQ(Ts[0]
                .Global.get("m")
                .mapAt(Value::integer(2))
                .mapAt(Value::integer(2))
                .getInt(),
            0)
      << "sibling entries untouched";
}

TEST(AslEvalTest, AssertInsideChooseOnlyFailsReachedPaths) {
  // The gate is false iff SOME path fails: with a choose, one bad element
  // suffices.
  CompiledModule C =
      compileOk("var s: set<int> := insert(insert({}, 1), 2);\n"
                "action Main() { choose e in s; assert e != 2; }\n");
  EXPECT_FALSE(
      C.P.action("Main").evalGate(C.InitialStore, {}, PaMultiset()));
  // Failing paths contribute no transitions; the good path remains.
  auto Ts = C.P.action("Main").transitions(C.InitialStore, {});
  EXPECT_EQ(Ts.size(), 1u);
}

TEST(AslEvalTest, BagOperationsEndToEnd) {
  CompiledModule C = compileOk(
      "var b: bag<int> := insert(insert(insert({}, 5), 5), 7);\n"
      "var x: int := 0;\n"
      "action Main() {\n"
      "  assert size(b) == 3;\n"
      "  assert contains(b, 5);\n"
      "  b := erase(b, 5);\n"
      "  assert size(b) == 2;\n"
      "  x := max(b);\n"
      "}\n");
  auto Ts = C.P.action("Main").transitions(C.InitialStore, {});
  ASSERT_EQ(Ts.size(), 1u);
  EXPECT_EQ(Ts[0].Global.get("x").getInt(), 7);
}

TEST(AslEvalTest, MissingConstBindingDiagnosed) {
  std::vector<Diagnostic> Diags;
  auto C = compileModule("const n: int;\n", {}, Diags);
  EXPECT_FALSE(C.has_value());
  ASSERT_FALSE(Diags.empty());
  EXPECT_NE(Diags[0].Message.find("no binding"), std::string::npos);
}

TEST(AslEvalTest, ExtraConstBindingDiagnosed) {
  std::vector<Diagnostic> Diags;
  auto C = compileModule("var x: int := 0;\n", {{"n", 3}}, Diags);
  EXPECT_FALSE(C.has_value());
  ASSERT_FALSE(Diags.empty());
  EXPECT_NE(Diags[0].Message.find("undeclared constant"),
            std::string::npos);
}

TEST(AslEvalTest, SubsetsEnumeratesThePowerSet) {
  CompiledModule C = compileOk(
      "var s: set<int> := insert(insert({}, 1), 2);\n"
      "var c: int := 0;\n"
      "action Main() { c := size(subsets(s)); }\n");
  auto Ts = C.P.action("Main").transitions(C.InitialStore, {});
  ASSERT_EQ(Ts.size(), 1u);
  EXPECT_EQ(Ts[0].Global.get("c").getInt(), 4) << "2^2 subsets";
}

TEST(AslEvalTest, PendingLeFiltersByFirstArgument) {
  const char *Source = R"(
var ok: int := 0;
action Main() { async W(1, 5); async W(2, 5); async W(3, 6); }
action W(r: int, x: int) { skip; }
action Probe() {
  assert pending(W) == 3;
  assert pending_le(W, 2) == 2;
  assert pending_le(W, 0) == 0;
  assert pending_le_at(W, 3, 5) == 2;
  assert pending_le_at(W, 3, 6) == 1;
  assert pending_le_at(W, 1, 6) == 0;
}
)";
  std::vector<Diagnostic> Diags;
  auto C = compileModule(Source, {}, Diags);
  ASSERT_TRUE(C.has_value()) << (Diags.empty() ? "" : Diags[0].str());
  // Build the configuration after Main and evaluate Probe's gate there.
  PaMultiset Omega;
  Omega.insert(PendingAsync("W", {Value::integer(1), Value::integer(5)}));
  Omega.insert(PendingAsync("W", {Value::integer(2), Value::integer(5)}));
  Omega.insert(PendingAsync("W", {Value::integer(3), Value::integer(6)}));
  EXPECT_TRUE(C->P.action("Probe").evalGate(C->InitialStore, {}, Omega));
  // Removing one PA flips the exact-count asserts.
  Omega.erase(PendingAsync("W", {Value::integer(1), Value::integer(5)}));
  EXPECT_FALSE(C->P.action("Probe").evalGate(C->InitialStore, {}, Omega));
}
