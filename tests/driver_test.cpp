//===- tests/driver_test.cpp - Verification driver tests ---------------------------===//
///
/// \file
/// End-to-end tests of the isq-verify pipeline: ASL protocols with their
/// proof artifacts (sequentialization order, pending()-gated abstractions,
/// cooperation weights) verified push-button.
///
//===----------------------------------------------------------------------===//

#include "driver/VerifyDriver.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace isq;
using namespace isq::driver;

namespace {

/// Reads one of the shipped example modules, keeping the tests honest
/// about the files users actually see.
std::string readExampleAsl(const std::string &Name) {
  std::ifstream In(std::string(ISQ_SOURCE_DIR) + "/examples/asl/" + Name);
  EXPECT_TRUE(In.good()) << "missing example file " << Name;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

/// The Fig. 1 protocol plus its Fig. 1-④ abstraction, entirely in ASL.
const char *BroadcastWithAbs = R"(
const n: int;

var value: map<int, int> := map i in 1 .. n : i;
var decision: map<int, option<int>> := map i in 1 .. n : none;
var CH: map<int, bag<int>> := map i in 1 .. n : {};

action Main() {
  for i in 1 .. n {
    async Broadcast(i);
    async Collect(i);
  }
}

action Broadcast(i: int) {
  for j in 1 .. n {
    CH[j] := insert(CH[j], value[i]);
  }
}

action Collect(i: int) {
  await size(CH[i]) >= n;
  choose vs in sub_bags(CH[i], n);
  CH[i] := diff(CH[i], vs);
  decision[i] := some(max(vs));
}

// Fig. 1-④: the gate asserts the sequential-context facts — no pending
// Broadcasts and a full channel — making Collect a non-blocking left
// mover.
action CollectAbs(i: int) {
  assert pending(Broadcast) == 0;
  assert size(CH[i]) >= n;
  await size(CH[i]) >= n;
  choose vs in sub_bags(CH[i], n);
  CH[i] := diff(CH[i], vs);
  decision[i] := some(max(vs));
}
)";

} // namespace

TEST(DriverTest, BroadcastAcceptedPushButton) {
  VerifyOptions Options;
  Options.Source = BroadcastWithAbs;
  Options.Consts = {{"n", 3}};
  Options.Eliminate = {"Broadcast", "Collect"};
  Options.Abstractions = {{"Collect", "CollectAbs"}};
  VerifyResult Result = verifyModule(Options);
  EXPECT_TRUE(Result.CompileOk) << Result.Summary;
  EXPECT_TRUE(Result.Accepted) << Result.Summary;
  EXPECT_NE(Result.Summary.find("ACCEPTED"), std::string::npos);
  EXPECT_NE(Result.Summary.find("P ≼ P'"), std::string::npos);
}

TEST(DriverTest, MissingAbstractionRejected) {
  VerifyOptions Options;
  Options.Source = BroadcastWithAbs;
  Options.Consts = {{"n", 2}};
  Options.Eliminate = {"Broadcast", "Collect"};
  VerifyResult Result = verifyModule(Options);
  EXPECT_TRUE(Result.CompileOk);
  EXPECT_FALSE(Result.Accepted);
  EXPECT_FALSE(Result.Report.LeftMovers.ok()) << Result.Summary;
}

TEST(DriverTest, WrongEliminationOrderRejected) {
  VerifyOptions Options;
  Options.Source = BroadcastWithAbs;
  Options.Consts = {{"n", 2}};
  Options.Eliminate = {"Collect", "Broadcast"};
  Options.Abstractions = {{"Collect", "CollectAbs"}};
  VerifyResult Result = verifyModule(Options);
  EXPECT_TRUE(Result.CompileOk);
  EXPECT_FALSE(Result.Accepted);
  EXPECT_FALSE(Result.Report.InductiveStep.ok()) << Result.Summary;
}

TEST(DriverTest, CompileErrorsSurface) {
  VerifyOptions Options;
  Options.Source = "action Main() { oops; }";
  Options.Eliminate = {"Main"};
  VerifyResult Result = verifyModule(Options);
  EXPECT_FALSE(Result.CompileOk);
  EXPECT_FALSE(Result.Accepted);
  EXPECT_NE(Result.Summary.find("compilation failed"), std::string::npos);
}

TEST(DriverTest, UnknownActionNamesDiagnosed) {
  VerifyOptions Options;
  Options.Source = "action Main() { skip; }";
  Options.Consts = {};
  Options.Eliminate = {"Nope"};
  VerifyResult Result = verifyModule(Options);
  EXPECT_TRUE(Result.CompileOk);
  EXPECT_FALSE(Result.Accepted);
  EXPECT_NE(Result.Summary.find("not declared"), std::string::npos);

  Options.Eliminate = {"Main"};
  Options.RewriteAction = "Missing";
  Result = verifyModule(Options);
  EXPECT_FALSE(Result.Accepted);
  EXPECT_NE(Result.Summary.find("not declared"), std::string::npos);
}

TEST(DriverTest, PingPongChainInAsl) {
  // A two-task chain: Ping(k) sends k, Pong(k) acknowledges; weights make
  // the measure decrease although each task re-creates its successor.
  const char *Source = R"(
const T: int;
var chPing: bag<int> := {};
var chPong: bag<int> := {};
var done: int := 0;

action Main() {
  async Ping(1);
  async Pong(1);
}

action Ping(k: int) {
  if k > 1 {
    await size(chPing) >= 1;
    choose a in chPing;
    chPing := erase(chPing, a);
    assert a == k - 1;
  }
  if k <= T {
    chPong := insert(chPong, k);
    async Ping(k + 1);
  } else {
    done := done + 1;
  }
}

action Pong(k: int) {
  await size(chPong) >= 1;
  choose v in chPong;
  chPong := erase(chPong, v);
  assert v == k;
  chPing := insert(chPing, k);
  if k < T {
    async Pong(k + 1);
  }
}

action PingAbs(k: int) {
  assert k == 1 || size(chPing) >= 1;
  if k > 1 {
    await size(chPing) >= 1;
    choose a in chPing;
    chPing := erase(chPing, a);
    assert a == k - 1;
  }
  if k <= T {
    chPong := insert(chPong, k);
    async Ping(k + 1);
  } else {
    done := done + 1;
  }
}

action PongAbs(k: int) {
  assert size(chPong) >= 1;
  await size(chPong) >= 1;
  choose v in chPong;
  chPong := erase(chPong, v);
  assert v == k;
  chPing := insert(chPing, k);
  if k < T {
    async Pong(k + 1);
  }
}
)";
  VerifyOptions Options;
  Options.Source = Source;
  Options.Consts = {{"T", 2}};
  Options.Eliminate = {"Ping", "Pong"};
  Options.Order = VerifyOptions::RankOrder::ArgMajor;
  Options.Abstractions = {{"Ping", "PingAbs"}, {"Pong", "PongAbs"}};
  VerifyResult Result = verifyModule(Options);
  EXPECT_TRUE(Result.CompileOk) << Result.Summary;
  EXPECT_TRUE(Result.Accepted) << Result.Summary;
}

TEST(DriverTest, ShippedBroadcastExampleVerifies) {
  VerifyOptions Options;
  Options.Source = readExampleAsl("broadcast.asl");
  Options.Consts = {{"n", 3}};
  Options.Eliminate = {"Broadcast", "Collect"};
  Options.Abstractions = {{"Collect", "CollectAbs"}};
  VerifyResult Result = verifyModule(Options);
  EXPECT_TRUE(Result.Accepted) << Result.Summary;
}

TEST(DriverTest, ShippedPingPongExampleVerifies) {
  VerifyOptions Options;
  Options.Source = readExampleAsl("ping_pong.asl");
  Options.Consts = {{"T", 3}};
  Options.Eliminate = {"Ping", "Pong"};
  Options.Order = VerifyOptions::RankOrder::ArgMajor;
  Options.Abstractions = {{"Ping", "PingAbs"}, {"Pong", "PongAbs"}};
  VerifyResult Result = verifyModule(Options);
  EXPECT_TRUE(Result.Accepted) << Result.Summary;
}

TEST(DriverTest, ShippedTwoPhaseCommitExampleVerifies) {
  // 2PC with early abort: the fan-out phases need cooperation weights
  // that dominate what they spawn; Decide needs the all-votes-arrived
  // abstraction to be a left mover (it reads what Vote writes).
  VerifyOptions Options;
  Options.Source = readExampleAsl("two_phase_commit.asl");
  Options.Consts = {{"n", 3}};
  Options.Eliminate = {"RequestVotes", "Vote", "Decide", "Finalize"};
  Options.Abstractions = {{"Decide", "DecideAbs"}};
  Options.Weights = {{"RequestVotes", 10}, {"Decide", 5}};
  VerifyResult Result = verifyModule(Options);
  EXPECT_TRUE(Result.Accepted) << Result.Summary;
}

TEST(DriverTest, TwoPhaseCommitWithoutWeightsFailsCooperation) {
  // Default weight 1 everywhere: RequestVotes spawns n+1 PAs for 1 — the
  // weighted count increases and the (CO) condition correctly fails.
  VerifyOptions Options;
  Options.Source = readExampleAsl("two_phase_commit.asl");
  Options.Consts = {{"n", 2}};
  Options.Eliminate = {"RequestVotes", "Vote", "Decide", "Finalize"};
  Options.Abstractions = {{"Decide", "DecideAbs"}};
  VerifyResult Result = verifyModule(Options);
  EXPECT_FALSE(Result.Accepted);
  EXPECT_FALSE(Result.Report.Cooperation.ok()) << Result.Summary;
}

TEST(DriverTest, TwoPhaseCommitWithoutDecideAbstractionRejected) {
  VerifyOptions Options;
  Options.Source = readExampleAsl("two_phase_commit.asl");
  Options.Consts = {{"n", 2}};
  Options.Eliminate = {"RequestVotes", "Vote", "Decide", "Finalize"};
  Options.Weights = {{"RequestVotes", 10}, {"Decide", 5}};
  VerifyResult Result = verifyModule(Options);
  EXPECT_FALSE(Result.Accepted);
  EXPECT_FALSE(Result.Report.LeftMovers.ok()) << Result.Summary;
}

TEST(DriverTest, ShippedPaxosExampleVerifies) {
  // The paper's flagship (Fig. 4) as ASL input: round-by-round arg-major
  // schedule, Fig. 4(c) abstractions with pending_le gates, fan-out
  // weights for cooperation.
  VerifyOptions Options;
  Options.Source = readExampleAsl("paxos.asl");
  Options.Consts = {{"R", 2}, {"N", 2}};
  Options.Eliminate = {"StartRound", "Join", "Propose", "Vote",
                       "Conclude"};
  Options.Order = VerifyOptions::RankOrder::ArgMajor;
  Options.Abstractions = {{"Join", "JoinAbs"},
                          {"Propose", "ProposeAbs"},
                          {"Vote", "VoteAbs"},
                          {"Conclude", "ConcludeAbs"}};
  Options.Weights = {{"StartRound", 9}, {"Propose", 5}, {"Conclude", 2}};
  VerifyResult Result = verifyModule(Options);
  EXPECT_TRUE(Result.Accepted) << Result.Summary;
}

TEST(DriverTest, PaxosWithoutProposeAbstractionRejected) {
  VerifyOptions Options;
  Options.Source = readExampleAsl("paxos.asl");
  Options.Consts = {{"R", 2}, {"N", 2}};
  Options.Eliminate = {"StartRound", "Join", "Propose", "Vote",
                       "Conclude"};
  Options.Order = VerifyOptions::RankOrder::ArgMajor;
  Options.Abstractions = {{"Join", "JoinAbs"},
                          {"Vote", "VoteAbs"},
                          {"Conclude", "ConcludeAbs"}};
  Options.Weights = {{"StartRound", 9}, {"Propose", 5}, {"Conclude", 2}};
  VerifyResult Result = verifyModule(Options);
  EXPECT_FALSE(Result.Accepted);
  EXPECT_FALSE(Result.Report.LeftMovers.ok()) << Result.Summary;
}
