//===- tests/is_rule_test.cpp - IS proof rule unit tests -------------------------===//

#include "TestPrograms.h"
#include "is/ISCheck.h"
#include "is/Sequentialize.h"
#include "protocols/Pathological.h"
#include "refine/Refinement.h"

#include <gtest/gtest.h>

using namespace isq;
using namespace isq::testing;

namespace {

/// A correct IS application for the increment fan-out: Main spawns N Inc
/// tasks; the invariant summarizes "k increments already applied".
ISApplication makeIncrementIS(int64_t N) {
  ISApplication App;
  App.P = makeIncrementProgram(N);
  App.M = Program::mainSymbol();
  App.E = {Symbol::get("Inc")};
  App.Invariant = Action(
      "Inv", 0, Action::alwaysEnabled(),
      [N](const Store &G, const std::vector<Value> &) {
        std::vector<Transition> Out;
        int64_t X = G.get("x").getInt();
        for (int64_t K = 0; K <= N; ++K) {
          Transition T(G.set("x", iv(X + K)));
          for (int64_t I = K; I < N; ++I)
            T.Created.emplace_back("Inc", std::vector<Value>{});
          Out.push_back(std::move(T));
        }
        return Out;
      });
  App.Choice = ISApplication::chooseInOrder({Symbol::get("Inc")});
  App.WfMeasure = Measure::pendingAsyncCount();
  return App;
}

const std::vector<InitialCondition> kInits = {{xStore(0), {}},
                                              {xStore(5), {}}};

} // namespace

TEST(ISRuleTest, AcceptsIncrementSequentialization) {
  ISApplication App = makeIncrementIS(3);
  ISCheckReport Report = checkIS(App, kInits);
  EXPECT_TRUE(Report.ok()) << Report.str();
  EXPECT_GT(Report.totalObligations(), 0u);
}

TEST(ISRuleTest, TransformedProgramIsSequential) {
  ISApplication App = makeIncrementIS(3);
  Program PPrime = applyIS(App);
  ExploreResult R = explore(PPrime, initialConfiguration(xStore(0)));
  // M' executes in one step to the unique final state: exactly 2
  // configurations (initial, done).
  EXPECT_EQ(R.Stats.NumConfigurations, 2u);
  ASSERT_EQ(R.TerminalStores.size(), 1u);
  EXPECT_EQ(R.TerminalStores[0].get("x").getInt(), 3);
}

TEST(ISRuleTest, ConclusionOfTheRuleHolds) {
  // The formal guarantee: P ≼ P[M ↦ M'].
  ISApplication App = makeIncrementIS(4);
  ASSERT_TRUE(checkIS(App, kInits).ok());
  EXPECT_TRUE(
      checkProgramRefinement(App.P, applyIS(App), kInits).ok());
}

TEST(ISRuleTest, RejectsNonInductiveInvariant) {
  // An invariant missing the intermediate prefixes (only k = 0 and k = N)
  // fails the inductive step (I3).
  int64_t N = 3;
  ISApplication App = makeIncrementIS(N);
  App.Invariant = Action(
      "BadInv", 0, Action::alwaysEnabled(),
      [N](const Store &G, const std::vector<Value> &) {
        std::vector<Transition> Out;
        int64_t X = G.get("x").getInt();
        for (int64_t K : {int64_t(0), N}) {
          Transition T(G.set("x", iv(X + K)));
          for (int64_t I = K; I < N; ++I)
            T.Created.emplace_back("Inc", std::vector<Value>{});
          Out.push_back(std::move(T));
        }
        return Out;
      });
  ISCheckReport Report = checkIS(App, kInits);
  EXPECT_FALSE(Report.ok());
  EXPECT_FALSE(Report.InductiveStep.ok()) << Report.str();
}

TEST(ISRuleTest, RejectsInvariantThatMissesBaseCase) {
  // An invariant that always pre-applies one increment does not abstract
  // Main's transition: (I1) fails.
  int64_t N = 2;
  ISApplication App = makeIncrementIS(N);
  App.Invariant = Action(
      "ShiftedInv", 0, Action::alwaysEnabled(),
      [N](const Store &G, const std::vector<Value> &) {
        std::vector<Transition> Out;
        int64_t X = G.get("x").getInt();
        for (int64_t K = 1; K <= N; ++K) {
          Transition T(G.set("x", iv(X + K)));
          for (int64_t I = K; I < N; ++I)
            T.Created.emplace_back("Inc", std::vector<Value>{});
          Out.push_back(std::move(T));
        }
        return Out;
      });
  ISCheckReport Report = checkIS(App, kInits);
  EXPECT_FALSE(Report.ok());
  EXPECT_FALSE(Report.BaseCase.ok()) << Report.str();
}

TEST(ISRuleTest, SideConditionsRejectMalformedApplications) {
  ISApplication App = makeIncrementIS(2);
  App.E.push_back(Symbol::get("NoSuchAction"));
  EXPECT_FALSE(checkIS(App, kInits).SideConditions.ok());

  ISApplication App2 = makeIncrementIS(2);
  App2.WfMeasure = Measure();
  EXPECT_FALSE(checkIS(App2, kInits).SideConditions.ok());

  ISApplication App3 = makeIncrementIS(2);
  App3.Choice = nullptr;
  EXPECT_FALSE(checkIS(App3, kInits).SideConditions.ok());
}

TEST(ISRuleTest, DerivedSequentializationMatchesRestriction) {
  ISApplication App = makeIncrementIS(3);
  Action MPrime = sequentializedAction(App);
  // From x=0 the only E-free invariant transition is x := 3.
  auto Ts = MPrime.transitions(xStore(0), {});
  ASSERT_EQ(Ts.size(), 1u);
  EXPECT_EQ(Ts[0].Global.get("x").getInt(), 3);
  EXPECT_TRUE(Ts[0].Created.empty());
}

// --- The §4 cooperation counterexample ------------------------------------------

TEST(CooperationTest, CounterexampleIsRejected) {
  using namespace isq::protocols;
  ISApplication App = makeCooperationCounterexampleIS();
  std::vector<InitialCondition> Inits = {
      {makeCooperationCounterexampleStore(), {}}};
  ISCheckReport Report = checkIS(App, Inits);
  // Every condition except cooperation holds...
  EXPECT_TRUE(Report.SideConditions.ok()) << Report.str();
  EXPECT_TRUE(Report.BaseCase.ok()) << Report.str();
  EXPECT_TRUE(Report.Conclusion.ok()) << Report.str();
  EXPECT_TRUE(Report.InductiveStep.ok()) << Report.str();
  EXPECT_TRUE(Report.LeftMovers.ok()) << Report.str();
  // ...but (CO) must fail: Rec reproduces itself and never decreases.
  EXPECT_FALSE(Report.Cooperation.ok()) << Report.str();
  EXPECT_FALSE(Report.ok());
}

TEST(CooperationTest, SkippingCooperationWouldBeUnsound) {
  // Demonstrates *why* (CO) matters: P can fail (Main; Fail) but the
  // would-be P' cannot even take a step (M' has an empty transition
  // relation), so P ⋠ P'.
  using namespace isq::protocols;
  ISApplication App = makeCooperationCounterexampleIS();
  Program PPrime = applyIS(App);
  Store Init = makeCooperationCounterexampleStore();

  ExploreResult Concrete =
      explore(App.P, initialConfiguration(Init));
  EXPECT_TRUE(Concrete.FailureReachable);

  ExploreResult Abstract = explore(PPrime, initialConfiguration(Init));
  EXPECT_FALSE(Abstract.FailureReachable)
      << "P' cannot fail — exactly the unsoundness (CO) prevents";
  CheckResult R = checkProgramRefinement(App.P, PPrime,
                                         {{Init, {}}});
  EXPECT_FALSE(R.ok());
}
