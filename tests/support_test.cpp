//===- tests/support_test.cpp - Support library unit tests -----------------===//

#include "support/Format.h"
#include "support/Multiset.h"
#include "support/Random.h"
#include "support/Symbol.h"

#include <gtest/gtest.h>

using namespace isq;

// --- Symbol ------------------------------------------------------------------

TEST(SymbolTest, InterningIsIdempotent) {
  Symbol A = Symbol::get("alpha");
  Symbol B = Symbol::get("alpha");
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.index(), B.index());
  EXPECT_EQ(A.str(), "alpha");
}

TEST(SymbolTest, DistinctNamesDistinctSymbols) {
  Symbol A = Symbol::get("one-name");
  Symbol B = Symbol::get("another-name");
  EXPECT_NE(A, B);
}

TEST(SymbolTest, DefaultIsInvalid) {
  Symbol S;
  EXPECT_FALSE(S.isValid());
}

TEST(SymbolTest, OrderingIsByInterningIndex) {
  Symbol A = Symbol::get("zz-first-interned");
  Symbol B = Symbol::get("aa-second-interned");
  EXPECT_LT(A, B) << "ordering follows interning order, not spelling";
}

// --- Multiset -----------------------------------------------------------------

TEST(MultisetTest, InsertEraseCount) {
  Multiset<int> M;
  EXPECT_TRUE(M.empty());
  M.insert(3);
  M.insert(3);
  M.insert(5);
  EXPECT_EQ(M.count(3), 2u);
  EXPECT_EQ(M.count(5), 1u);
  EXPECT_EQ(M.count(7), 0u);
  EXPECT_EQ(M.size(), 3u);
  EXPECT_EQ(M.distinctSize(), 2u);
  M.erase(3);
  EXPECT_EQ(M.count(3), 1u);
  M.erase(3);
  EXPECT_EQ(M.count(3), 0u);
  EXPECT_FALSE(M.contains(3));
}

TEST(MultisetTest, CanonicalFormGivesEquality) {
  Multiset<int> A = Multiset<int>::fromSequence({3, 1, 2, 1});
  Multiset<int> B = Multiset<int>::fromSequence({1, 2, 1, 3});
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.hash(), B.hash());
}

TEST(MultisetTest, UnionSumsMultiplicities) {
  Multiset<int> A = Multiset<int>::fromSequence({1, 1, 2});
  Multiset<int> B = Multiset<int>::fromSequence({1, 3});
  Multiset<int> U = A.unionWith(B);
  EXPECT_EQ(U.count(1), 3u);
  EXPECT_EQ(U.count(2), 1u);
  EXPECT_EQ(U.count(3), 1u);
}

TEST(MultisetTest, DifferenceSubtracts) {
  Multiset<int> A = Multiset<int>::fromSequence({1, 1, 2, 3});
  Multiset<int> B = Multiset<int>::fromSequence({1, 3});
  Multiset<int> D = A.differenceWith(B);
  EXPECT_EQ(D, Multiset<int>::fromSequence({1, 2}));
}

TEST(MultisetTest, SubsetRespectsMultiplicity) {
  Multiset<int> A = Multiset<int>::fromSequence({1, 1});
  Multiset<int> B = Multiset<int>::fromSequence({1, 2});
  EXPECT_FALSE(A.isSubsetOf(B)) << "two copies of 1 are not within one";
  EXPECT_TRUE(Multiset<int>::fromSequence({1}).isSubsetOf(B));
  EXPECT_TRUE(Multiset<int>().isSubsetOf(B));
}

TEST(MultisetTest, EraseUpTo) {
  Multiset<int> M = Multiset<int>::fromSequence({4, 4, 4});
  EXPECT_EQ(M.eraseUpTo(4, 5), 3u);
  EXPECT_TRUE(M.empty());
  EXPECT_EQ(M.eraseUpTo(4, 1), 0u);
}

TEST(MultisetTest, FlattenRepeatsElements) {
  Multiset<int> M = Multiset<int>::fromSequence({2, 1, 2});
  std::vector<int> F = M.flatten();
  EXPECT_EQ(F, (std::vector<int>{1, 2, 2}));
}

// Property sweeps over pseudo-random sequences: the canonical form is a
// pure function of the element multiset, however it was built.

TEST(MultisetTest, PropertyFromSequenceEqualsRepeatedInsert) {
  Rng R(7);
  for (int Trial = 0; Trial < 50; ++Trial) {
    std::vector<int> Elems;
    size_t Len = R.below(24);
    for (size_t I = 0; I < Len; ++I)
      Elems.push_back(static_cast<int>(R.below(6)));

    Multiset<int> FromSeq = Multiset<int>::fromSequence(Elems);
    Multiset<int> Inserted;
    for (int E : Elems)
      Inserted.insert(E);
    EXPECT_EQ(FromSeq, Inserted);
    // Batched insertion of counted runs lands on the same canonical form.
    Multiset<int> Batched;
    for (const auto &[E, Count] : FromSeq.entries())
      Batched.insert(E, Count);
    EXPECT_EQ(FromSeq, Batched);
    EXPECT_EQ(FromSeq.size(), Elems.size());
  }
}

TEST(MultisetTest, PropertyEraseToZeroRemovesEntry) {
  Rng R(11);
  for (int Trial = 0; Trial < 50; ++Trial) {
    std::vector<int> Elems;
    size_t Len = 1 + R.below(20);
    for (size_t I = 0; I < Len; ++I)
      Elems.push_back(static_cast<int>(R.below(5)));
    Multiset<int> M = Multiset<int>::fromSequence(Elems);

    // Erase every copy of one present element: the entry must vanish from
    // the canonical entries, not linger with multiplicity zero.
    int Victim = Elems[R.below(Elems.size())];
    M.erase(Victim, M.count(Victim));
    EXPECT_EQ(M.count(Victim), 0u);
    EXPECT_FALSE(M.contains(Victim));
    for (const auto &[E, Count] : M.entries()) {
      EXPECT_NE(E, Victim);
      EXPECT_GT(Count, 0u);
    }
    // The survivor equals the multiset built without the victim.
    std::vector<int> Rest;
    for (int E : Elems)
      if (E != Victim)
        Rest.push_back(E);
    EXPECT_EQ(M, Multiset<int>::fromSequence(Rest));
  }
}

TEST(MultisetTest, PropertyHashAgreesWithEquality) {
  Rng R(13);
  for (int Trial = 0; Trial < 50; ++Trial) {
    std::vector<int> Elems;
    size_t Len = R.below(16);
    for (size_t I = 0; I < Len; ++I)
      Elems.push_back(static_cast<int>(R.below(4)));

    // Any permutation of the build sequence is the same multiset: equal,
    // and therefore equal hashes.
    std::vector<int> Shuffled = Elems;
    for (size_t I = Shuffled.size(); I > 1; --I)
      std::swap(Shuffled[I - 1], Shuffled[R.below(I)]);
    Multiset<int> A = Multiset<int>::fromSequence(Elems);
    Multiset<int> B = Multiset<int>::fromSequence(Shuffled);
    EXPECT_EQ(A, B);
    EXPECT_EQ(A.hash(), B.hash());

    // Inserting one more copy changes the multiset; hashes of unequal
    // multisets may collide in principle, but not on these small integer
    // universes (this pins hash() actually observing multiplicities).
    Multiset<int> C = A;
    C.insert(1);
    EXPECT_NE(A, C);
    EXPECT_NE(A.hash(), C.hash());
  }
}

// --- Format -----------------------------------------------------------------

TEST(FormatTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"solo"}, ", "), "solo");
}

TEST(FormatTest, PadTo) {
  EXPECT_EQ(padTo("ab", 4), "ab  ");
  EXPECT_EQ(padTo("abcdef", 4), "abcdef");
}

TEST(FormatTest, TableAlignsColumns) {
  std::string T = formatTable({"name", "n"}, {{"alpha", "1"}, {"b", "22"}});
  EXPECT_NE(T.find("alpha  1"), std::string::npos) << T;
  EXPECT_NE(T.find("b      22"), std::string::npos) << T;
}

// --- Rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicSequence) {
  Rng A(42), B(42);
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, BelowStaysInRange) {
  Rng R;
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.below(7), 7u);
}
