//===- tests/explorer_test.cpp - Explorer unit tests --------------------------===//

#include "TestPrograms.h"
#include "explorer/Explorer.h"

#include <gtest/gtest.h>

using namespace isq;
using namespace isq::testing;

TEST(ExplorerTest, IncrementReachesUniqueTerminal) {
  Program P = makeIncrementProgram(3);
  ExploreResult R = explore(P, initialConfiguration(xStore(0)));
  EXPECT_FALSE(R.FailureReachable);
  ASSERT_EQ(R.TerminalStores.size(), 1u);
  EXPECT_EQ(R.TerminalStores[0].get("x").getInt(), 3);
  // Configurations: init, after Main, x=1,2,3 with shrinking PA counts.
  EXPECT_EQ(R.Stats.NumConfigurations, 5u);
  EXPECT_TRUE(R.Deadlocks.empty());
}

TEST(ExplorerTest, FailureDetectionAndTrace) {
  Program P = makeConditionalFailProgram();
  ExploreResult R = explore(P, initialConfiguration(xStore(1)));
  EXPECT_TRUE(R.FailureReachable);
  ASSERT_TRUE(R.FailureTrace.has_value());
  EXPECT_TRUE(R.FailureTrace->isFailing());
  EXPECT_EQ(R.FailureTrace->Steps.size(), 2u) << "Main; Check -> FAIL";
  EXPECT_EQ(R.FailureTrace->Steps.back().Executed.str(), "Check()");
}

TEST(ExplorerTest, NoFailureFromGoodStore) {
  Program P = makeConditionalFailProgram();
  ExploreResult R = explore(P, initialConfiguration(xStore(0)));
  EXPECT_FALSE(R.FailureReachable);
  EXPECT_FALSE(R.FailureTrace.has_value());
}

TEST(ExplorerTest, DeadlockDetection) {
  Program P = makeBlockingProgram();
  ExploreResult R = explore(P, initialConfiguration(xStore(0)));
  EXPECT_FALSE(R.FailureReachable);
  EXPECT_TRUE(R.TerminalStores.empty());
  ASSERT_EQ(R.Deadlocks.size(), 1u);
  EXPECT_TRUE(
      R.Deadlocks[0].pendingAsyncs().contains(PendingAsync("Recv", {})));
}

TEST(ExplorerTest, TruncationIsReported) {
  Program P = makeIncrementProgram(10);
  ExploreOptions Opts;
  Opts.MaxConfigurations = 3;
  ExploreResult R = explore(P, initialConfiguration(xStore(0)), Opts);
  EXPECT_TRUE(R.Stats.Truncated);
  EXPECT_EQ(R.Stats.NumConfigurations, 3u);
}

TEST(ExplorerTest, SummarizeComputesGoodAndTrans) {
  Program P = makeConditionalFailProgram();
  auto [GoodBad, TransBad] = summarize(P, xStore(5));
  EXPECT_FALSE(GoodBad);
  (void)TransBad;
  auto [GoodOk, TransOk] = summarize(P, xStore(0));
  EXPECT_TRUE(GoodOk);
  ASSERT_EQ(TransOk.size(), 1u);
  EXPECT_EQ(TransOk[0].get("x").getInt(), 0);
}

TEST(ExplorerTest, ExploreAllMergesRoots) {
  Program P = makeIncrementProgram(1);
  ExploreResult R = exploreAll(
      P, {initialConfiguration(xStore(0)), initialConfiguration(xStore(10))});
  ASSERT_EQ(R.TerminalStores.size(), 2u);
}

// --- Execution enumeration / sampling ---------------------------------------

TEST(TraceTest, EnumerateExecutionsCoversInterleavings) {
  Program P = makeIncrementProgram(2);
  auto Execs =
      enumerateExecutions(P, initialConfiguration(xStore(0)), 100, 100);
  // Two identical Inc PAs collapse to one scheduling choice per step:
  // exactly one maximal schedule Main; Inc; Inc.
  ASSERT_EQ(Execs.size(), 1u);
  EXPECT_TRUE(Execs[0].isTerminating());
  EXPECT_EQ(Execs[0].scheduleStr(), "Main(); Inc(); Inc()");
  EXPECT_TRUE(Execs[0].isValid(P));
}

TEST(TraceTest, ExecutionValidationCatchesCorruption) {
  Program P = makeIncrementProgram(1);
  auto Execs =
      enumerateExecutions(P, initialConfiguration(xStore(0)), 10, 10);
  ASSERT_FALSE(Execs.empty());
  Execution E = Execs[0];
  ASSERT_TRUE(E.isValid(P));
  // Corrupt the final store.
  Execution Bad = E;
  Bad.Steps.back().Successor =
      Bad.Steps.back().Successor.withGlobal(xStore(42));
  EXPECT_FALSE(Bad.isValid(P));
}

TEST(TraceTest, SampleExecutionTerminates) {
  Program P = makeIncrementProgram(3);
  Rng R(7);
  auto E = sampleExecution(P, initialConfiguration(xStore(0)), R, 100);
  ASSERT_TRUE(E.has_value());
  EXPECT_TRUE(E->isTerminating());
  EXPECT_EQ(E->finalConfiguration().global().get("x").getInt(), 3);
}

TEST(TraceTest, SampleExecutionReportsDeadlockAsNullopt) {
  Program P = makeBlockingProgram();
  Rng R(7);
  auto E = sampleExecution(P, initialConfiguration(xStore(0)), R, 100);
  EXPECT_FALSE(E.has_value());
}
