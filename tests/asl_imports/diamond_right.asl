import "diamond_base.asl";

var right: int := base;
