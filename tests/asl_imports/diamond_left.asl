import "diamond_base.asl";

var left: int := base;
