// Shared base of the diamond-import fixture. Both diamond_left.asl and
// diamond_right.asl import this file; the resolver must merge it exactly
// once or 'base' becomes a duplicate declaration.
var base: int := 1;
