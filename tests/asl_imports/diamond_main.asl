// Diamond-import fixture root: both arms import diamond_base.asl. The
// post-order merge is left, right, then this file, with base included
// exactly once ahead of both arms.
import "diamond_left.asl";
import "diamond_right.asl";

var total: int := left + right + base;

action Main() {
  assert total == 3;
}
