//===- tests/reduction_test.cpp - Lipton reduction tests --------------------------===//

#include "TestPrograms.h"
#include "reduction/Reduction.h"

#include <gtest/gtest.h>

using namespace isq;
using namespace isq::testing;

namespace {

/// q-channel store used by the fixtures.
Store chanStore(std::vector<int64_t> Msgs, int64_t X) {
  std::vector<Value> Elems;
  for (int64_t M : Msgs)
    Elems.push_back(iv(M));
  return Store::make({{Symbol::get("q"), Value::bag(Elems)},
                      {Symbol::get("x"), iv(X)}});
}

Action sendOp(const std::string &Name, int64_t V) {
  return Action(Name, 0, Action::alwaysEnabled(),
                [V](const Store &G, const std::vector<Value> &) {
                  return std::vector<Transition>{Transition(
                      G.set("q", G.get("q").bagInsert(iv(V))))};
                });
}

Action recvOp(const std::string &Name) {
  return Action(Name, 0, Action::alwaysEnabled(),
                [](const Store &G, const std::vector<Value> &) {
                  std::vector<Transition> Out;
                  const Value &Q = G.get("q");
                  for (const auto &[Msg, Count] : Q.bagEntries()) {
                    (void)Count;
                    Out.emplace_back(
                        G.set("q", Q.bagErase(Msg)).set("x", Msg));
                  }
                  return Out;
                });
}

Action assertPositiveOp(const std::string &Name) {
  return Action(Name, 0,
                [](const GateContext &Ctx) {
                  return Ctx.Global.get("x").getInt() > 0;
                },
                [](const Store &G, const std::vector<Value> &) {
                  return std::vector<Transition>{Transition(G)};
                });
}

} // namespace

// --- Lipton pattern ------------------------------------------------------------

TEST(AtomicPatternTest, ValidShapes) {
  using M = MoverType;
  EXPECT_TRUE(checkAtomicPattern({}).ok());
  EXPECT_TRUE(checkAtomicPattern({M::Right, M::Right, M::Left}).ok());
  EXPECT_TRUE(checkAtomicPattern({M::Right, M::None, M::Left}).ok());
  EXPECT_TRUE(checkAtomicPattern({M::None}).ok());
  EXPECT_TRUE(checkAtomicPattern({M::Both, M::Both}).ok());
  EXPECT_TRUE(checkAtomicPattern({M::Left, M::Left}).ok());
  EXPECT_TRUE(checkAtomicPattern({M::Right}).ok());
  EXPECT_TRUE(
      checkAtomicPattern({M::Both, M::Right, M::None, M::Left, M::Both})
          .ok());
}

TEST(AtomicPatternTest, InvalidShapes) {
  using M = MoverType;
  // Two non-movers.
  EXPECT_FALSE(checkAtomicPattern({M::None, M::None}).ok());
  // A right mover after the non-mover.
  EXPECT_FALSE(checkAtomicPattern({M::None, M::Right}).ok());
  // Left then right (pure) is not reducible.
  EXPECT_FALSE(checkAtomicPattern({M::Left, M::Right}).ok());
  // Right movers cannot follow left movers.
  EXPECT_FALSE(checkAtomicPattern({M::Right, M::Left, M::Right}).ok());
}

// --- Fusion ----------------------------------------------------------------------

TEST(FusionTest, SequentialComposition) {
  // recv; send — the canonical receive-then-respond handler.
  std::vector<PrimitiveOp> Ops = {{recvOp("RecvStep"), MoverType::Right},
                                  {sendOp("SendAck", 99), MoverType::Left}};
  Action Fused = fuseSequence("Handler", 0, Ops);
  Store G = chanStore({7}, 0);
  auto Ts = Fused.transitions(G, {});
  ASSERT_EQ(Ts.size(), 1u);
  EXPECT_EQ(Ts[0].Global.get("x").getInt(), 7);
  EXPECT_EQ(Ts[0].Global.get("q").bagCount(Value::integer(99)), 1u);
  EXPECT_EQ(Ts[0].Global.get("q").bagCount(Value::integer(7)), 0u);
}

TEST(FusionTest, BlockingPropagates) {
  std::vector<PrimitiveOp> Ops = {{recvOp("RecvStep"), MoverType::Right},
                                  {sendOp("SendAck", 99), MoverType::Left}};
  Action Fused = fuseSequence("Handler", 0, Ops);
  // Empty channel: the receive blocks, hence the block blocks.
  EXPECT_TRUE(Fused.transitions(chanStore({}, 0), {}).empty());
  EXPECT_TRUE(Fused.evalGate(chanStore({}, 0), {}, PaMultiset()))
      << "blocked is not failed";
}

TEST(FusionTest, NondeterminismMultipliesPaths) {
  std::vector<PrimitiveOp> Ops = {{recvOp("Recv1"), MoverType::Right},
                                  {recvOp("Recv2"), MoverType::Right}};
  Action Fused = fuseSequence("TwoRecvs", 0, Ops);
  // Receiving two of {1, 2, 3}: 3 choices then 2 — six paths, but the
  // final store only depends on x = last received and remaining bag.
  auto Ts = Fused.transitions(chanStore({1, 2, 3}, 0), {});
  EXPECT_EQ(Ts.size(), 6u);
}

TEST(FusionTest, IntermediateGateFailureFailsTheBlock) {
  // recv; assert x > 0 — receiving a non-positive message fails the
  // fused action's gate (failures are preserved per Definition 3.1).
  std::vector<PrimitiveOp> Ops = {
      {recvOp("RecvStep"), MoverType::Right},
      {assertPositiveOp("CheckPositive"), MoverType::Both}};
  Action Fused = fuseSequence("RecvChecked", 0, Ops);
  EXPECT_TRUE(Fused.evalGate(chanStore({5}, 0), {}, PaMultiset()));
  EXPECT_FALSE(Fused.evalGate(chanStore({-1}, 0), {}, PaMultiset()))
      << "some path reaches a violated gate";
  EXPECT_FALSE(Fused.evalGate(chanStore({5, -1}, 0), {}, PaMultiset()))
      << "one bad message among good ones still fails";
}

TEST(FusionTest, CreatedPendingAsyncsAccumulate) {
  Action Spawn1("SpawnA", 0, Action::alwaysEnabled(),
                [](const Store &G, const std::vector<Value> &) {
                  Transition T(G);
                  T.Created.emplace_back("A", std::vector<Value>{});
                  return std::vector<Transition>{std::move(T)};
                });
  Action Spawn2("SpawnB", 0, Action::alwaysEnabled(),
                [](const Store &G, const std::vector<Value> &) {
                  Transition T(G);
                  T.Created.emplace_back("B", std::vector<Value>{});
                  return std::vector<Transition>{std::move(T)};
                });
  Action Fused = fuseSequence("SpawnBoth", 0,
                              {{Spawn1, MoverType::Left},
                               {Spawn2, MoverType::Left}});
  auto Ts = Fused.transitions(xStore(0), {});
  ASSERT_EQ(Ts.size(), 1u);
  ASSERT_EQ(Ts[0].Created.size(), 2u);
  EXPECT_EQ(Ts[0].Created[0].Action.str(), "A");
  EXPECT_EQ(Ts[0].Created[1].Action.str(), "B");
}

TEST(FusionTest, FusedBlockRefinesFineGrainedProgram) {
  // End-to-end P1 ≼ P2 check: a fine-grained program running recv then
  // send as separate PAs versus the fused atomic handler. Their terminal
  // stores agree.
  Program Fine;
  Fine.addAction(Action("Main", 0, Action::alwaysEnabled(),
                        [](const Store &G, const std::vector<Value> &) {
                          Transition T(G);
                          T.Created.emplace_back("RecvStep",
                                                 std::vector<Value>{});
                          return std::vector<Transition>{std::move(T)};
                        }));
  Fine.addAction(Action("RecvStep", 0, Action::alwaysEnabled(),
                        [](const Store &G, const std::vector<Value> &) {
                          std::vector<Transition> Out;
                          const Value &Q = G.get("q");
                          for (const auto &[Msg, Count] : Q.bagEntries()) {
                            (void)Count;
                            Transition T(
                                G.set("q", Q.bagErase(Msg)).set("x", Msg));
                            T.Created.emplace_back("SendAck",
                                                   std::vector<Value>{});
                            Out.push_back(std::move(T));
                          }
                          return Out;
                        }));
  Fine.addAction(sendOp("SendAck", 99));

  Program Coarse;
  Coarse.addAction(Fine.action("Main").withName("Main"));
  Action Fused = fuseSequence(
      "RecvStep", 0,
      {{recvOp("RecvInner"), MoverType::Right},
       {sendOp("SendInner", 99), MoverType::Left}});
  Coarse.addAction(Fused);
  Coarse.addAction(sendOp("SendAck", 99)); // unused but keeps dom equal

  auto [GoodF, TransF] = summarize(Fine, chanStore({3, 4}, 0));
  auto [GoodC, TransC] = summarize(Coarse, chanStore({3, 4}, 0));
  EXPECT_TRUE(GoodF);
  EXPECT_TRUE(GoodC);
  EXPECT_EQ(TransF.size(), TransC.size());
}

// --- Annotation verification -------------------------------------------------------

TEST(AnnotationTest, VerifiesCorrectAnnotations) {
  Program P;
  P.addAction(Action("Main", 0, Action::alwaysEnabled(),
                     [](const Store &G, const std::vector<Value> &) {
                       return std::vector<Transition>{Transition(G)};
                     }));
  P.addAction(sendOp("Send99", 99));
  P.addAction(recvOp("RecvAny"));
  PaMultiset Omega;
  Omega.insert(PendingAsync("Send99", {}));
  Omega.insert(PendingAsync("RecvAny", {}));
  std::vector<Configuration> Universe{
      Configuration(chanStore({1, 2}, 0), Omega),
      Configuration(chanStore({}, 1), Omega)};
  std::vector<PrimitiveOp> Ops = {
      {P.action("RecvAny"), MoverType::Right},
      {P.action("Send99"), MoverType::Left}};
  EXPECT_TRUE(verifyMoverAnnotations(Ops, P, Universe).ok());
}

TEST(AnnotationTest, RejectsWrongAnnotations) {
  Program P;
  P.addAction(Action("Main", 0, Action::alwaysEnabled(),
                     [](const Store &G, const std::vector<Value> &) {
                       return std::vector<Transition>{Transition(G)};
                     }));
  P.addAction(sendOp("Send99", 99));
  P.addAction(recvOp("RecvAny"));
  PaMultiset Omega;
  Omega.insert(PendingAsync("Send99", {}));
  Omega.insert(PendingAsync("RecvAny", {}));
  std::vector<Configuration> Universe{
      Configuration(chanStore({}, 0), Omega)};
  // A blocking receive is not a left mover.
  std::vector<PrimitiveOp> Ops = {{P.action("RecvAny"), MoverType::Left}};
  CheckResult R = verifyMoverAnnotations(Ops, P, Universe);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.str().find("annotated left mover"), std::string::npos)
      << R.str();
}
