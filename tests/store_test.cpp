//===- tests/store_test.cpp - Store / PA / configuration unit tests ----------===//

#include "semantics/Configuration.h"
#include "semantics/PendingAsync.h"
#include "semantics/Store.h"

#include <gtest/gtest.h>

using namespace isq;

namespace {
Store twoVarStore() {
  return Store::make({{Symbol::get("x"), Value::integer(1)},
                      {Symbol::get("flag"), Value::boolean(false)}});
}
} // namespace

TEST(StoreTest, GetSet) {
  Store S = twoVarStore();
  EXPECT_EQ(S.get("x").getInt(), 1);
  EXPECT_FALSE(S.get("flag").getBool());
  Store S2 = S.set("x", Value::integer(2));
  EXPECT_EQ(S2.get("x").getInt(), 2);
  EXPECT_EQ(S.get("x").getInt(), 1) << "stores are immutable values";
}

TEST(StoreTest, SetInsertsNewVariable) {
  Store S = twoVarStore().set("y", Value::integer(9));
  EXPECT_TRUE(S.contains(Symbol::get("y")));
  EXPECT_EQ(S.size(), 3u);
  EXPECT_FALSE(twoVarStore().contains(Symbol::get("y")));
}

TEST(StoreTest, EqualityAndHashing) {
  Store A = twoVarStore();
  Store B = Store::make({{Symbol::get("flag"), Value::boolean(false)},
                         {Symbol::get("x"), Value::integer(1)}});
  EXPECT_EQ(A, B) << "construction order does not matter";
  EXPECT_EQ(A.hash(), B.hash());
  EXPECT_NE(A, A.set("x", Value::integer(5)));
}

TEST(PendingAsyncTest, EqualityAndOrdering) {
  PendingAsync A("Act", {Value::integer(1)});
  PendingAsync B("Act", {Value::integer(1)});
  PendingAsync C("Act", {Value::integer(2)});
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_LT(A, C);
  EXPECT_EQ(A.str(), "Act(1)");
}

TEST(PendingAsyncTest, MultisetRendering) {
  PaMultiset Omega;
  Omega.insert(PendingAsync("B", {Value::integer(1)}));
  Omega.insert(PendingAsync("B", {Value::integer(1)}));
  Omega.insert(PendingAsync("A", {}));
  std::string S = toString(Omega);
  EXPECT_NE(S.find("B(1):x2"), std::string::npos) << S;
  EXPECT_NE(S.find("A()"), std::string::npos) << S;
}

TEST(ConfigurationTest, FailureIsDistinct) {
  Configuration F = Configuration::failure();
  EXPECT_TRUE(F.isFailure());
  EXPECT_FALSE(F.isTerminating());
  Configuration C(twoVarStore(), PaMultiset());
  EXPECT_NE(C, F);
  EXPECT_EQ(F, Configuration::failure());
  EXPECT_EQ(F.str(), "FAIL");
}

TEST(ConfigurationTest, TerminatingMeansNoPas) {
  Configuration C(twoVarStore(), PaMultiset());
  EXPECT_TRUE(C.isTerminating());
  PaMultiset Omega;
  Omega.insert(PendingAsync("A", {}));
  Configuration C2 = C.withPendingAsyncs(Omega);
  EXPECT_FALSE(C2.isTerminating());
}

TEST(ConfigurationTest, StructuralEqualityAndHash) {
  PaMultiset Omega;
  Omega.insert(PendingAsync("A", {Value::integer(3)}));
  Configuration A(twoVarStore(), Omega);
  Configuration B(twoVarStore(), Omega);
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.hash(), B.hash());
  Configuration C = A.withGlobal(twoVarStore().set("x", Value::integer(7)));
  EXPECT_NE(A, C);
}
