//===- tests/rewriter_test.cpp - Execution rewriter tests (Lemma 4.3) -----------===//

#include "TestPrograms.h"
#include "explorer/Trace.h"
#include "is/Rewriter.h"
#include "is/Sequentialize.h"
#include "protocols/Broadcast.h"

#include <gtest/gtest.h>

using namespace isq;
using namespace isq::testing;

namespace {

ISApplication makeIncrementIS(int64_t N) {
  ISApplication App;
  App.P = makeIncrementProgram(N);
  App.M = Program::mainSymbol();
  App.E = {Symbol::get("Inc")};
  App.Invariant = Action(
      "Inv", 0, Action::alwaysEnabled(),
      [N](const Store &G, const std::vector<Value> &) {
        std::vector<Transition> Out;
        int64_t X = G.get("x").getInt();
        for (int64_t K = 0; K <= N; ++K) {
          Transition T(G.set("x", iv(X + K)));
          for (int64_t I = K; I < N; ++I)
            T.Created.emplace_back("Inc", std::vector<Value>{});
          Out.push_back(std::move(T));
        }
        return Out;
      });
  App.Choice = ISApplication::chooseInOrder({Symbol::get("Inc")});
  App.WfMeasure = Measure::pendingAsyncCount();
  return App;
}

} // namespace

TEST(RewriterTest, RewritesEveryTerminatingIncrementExecution) {
  ISApplication App = makeIncrementIS(3);
  auto Execs = enumerateExecutions(App.P, initialConfiguration(xStore(0)),
                                   1000, 100);
  ASSERT_FALSE(Execs.empty());
  for (const Execution &Pi : Execs) {
    ASSERT_TRUE(Pi.isTerminating());
    RewriteResult R = rewriteExecution(App, Pi);
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.Rewritten.finalConfiguration(), Pi.finalConfiguration());
    EXPECT_EQ(R.NumAbsorptions, 3u) << "one absorption per Inc PA";
    // The rewritten execution is a single M' step (everything absorbed).
    EXPECT_EQ(R.Rewritten.Steps.size(), 1u);
  }
}

TEST(RewriterTest, RewritesBroadcastExecutions) {
  using namespace isq::protocols;
  BroadcastParams Params{2, {}};
  ISApplication App = makeBroadcastIS(Params);
  Configuration Init =
      initialConfiguration(makeBroadcastInitialStore(Params));
  auto Execs = enumerateExecutions(App.P, Init, 2000, 100);
  ASSERT_FALSE(Execs.empty());
  size_t Terminating = 0;
  for (const Execution &Pi : Execs) {
    if (!Pi.isTerminating())
      continue;
    ++Terminating;
    RewriteResult R = rewriteExecution(App, Pi);
    ASSERT_TRUE(R.Ok) << R.Error << "\nschedule: " << Pi.scheduleStr();
    EXPECT_EQ(R.Rewritten.finalConfiguration(), Pi.finalConfiguration());
    EXPECT_EQ(R.NumAbsorptions, 4u) << "2 Broadcasts + 2 Collects";
  }
  EXPECT_GT(Terminating, 1u) << "multiple interleavings were exercised";
}

TEST(RewriterTest, StageLogRecordsFigure2Shape) {
  ISApplication App = makeIncrementIS(2);
  auto Execs = enumerateExecutions(App.P, initialConfiguration(xStore(0)),
                                   10, 100);
  ASSERT_FALSE(Execs.empty());
  RewriteResult R = rewriteExecution(App, Execs[0], /*LogStages=*/true);
  ASSERT_TRUE(R.Ok) << R.Error;
  // start, then (commuted, absorbed) per eliminated PA.
  EXPECT_EQ(R.Stages.size(), 1u + 2u * R.NumAbsorptions);
  EXPECT_NE(R.Stages.front().find("start"), std::string::npos);
  EXPECT_NE(R.Stages.back().find("absorbed"), std::string::npos);
}

TEST(RewriterTest, RejectsExecutionsNotStartingWithM) {
  ISApplication App = makeIncrementIS(2);
  Execution Empty;
  Empty.Initial = initialConfiguration(xStore(0));
  RewriteResult R = rewriteExecution(App, Empty);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("does not start"), std::string::npos);
}

TEST(RewriterTest, RejectsNonTerminatingExecutions) {
  ISApplication App = makeIncrementIS(2);
  auto Execs = enumerateExecutions(App.P, initialConfiguration(xStore(0)),
                                   10, 100);
  ASSERT_FALSE(Execs.empty());
  Execution Prefix = Execs[0];
  Prefix.Steps.pop_back(); // now ends with PAs left
  RewriteResult R = rewriteExecution(App, Prefix);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("terminating"), std::string::npos);
}

TEST(RewriterTest, CommuteCountMatchesDisplacement) {
  // Schedule Main; Inc; Inc (only interleaving for identical PAs): the
  // chosen PA is always already at the front, so zero commutes.
  ISApplication App = makeIncrementIS(2);
  auto Execs = enumerateExecutions(App.P, initialConfiguration(xStore(0)),
                                   10, 100);
  ASSERT_EQ(Execs.size(), 1u);
  RewriteResult R = rewriteExecution(App, Execs[0]);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.NumCommutes, 0u);
}
