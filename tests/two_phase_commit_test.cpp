//===- tests/two_phase_commit_test.cpp - 2PC tests --------------------------------===//

#include "explorer/Explorer.h"
#include "is/ISCheck.h"
#include "is/Sequentialize.h"
#include "protocols/TwoPhaseCommit.h"
#include "refine/Refinement.h"

#include <gtest/gtest.h>

using namespace isq;
using namespace isq::protocols;

namespace {

InitialCondition init(const TwoPhaseCommitParams &Params) {
  return {makeTwoPhaseCommitInitialStore(Params), {}};
}

Program runAllStages(const TwoPhaseCommitParams &Params) {
  Program Current = makeTwoPhaseCommitProgram(Params);
  for (size_t Stage = 0; Stage < kTwoPhaseCommitStages; ++Stage) {
    ISApplication App = makeTwoPhaseCommitStageIS(Params, Stage, Current);
    ISCheckReport Report = checkIS(App, {init(Params)});
    EXPECT_TRUE(Report.ok()) << "stage " << Stage << ":\n" << Report.str();
    Current = applyIS(App);
  }
  return Current;
}

} // namespace

TEST(TwoPhaseCommitTest, AgreementAndCommitValidity) {
  TwoPhaseCommitParams Params{3};
  Program P = makeTwoPhaseCommitProgram(Params);
  ExploreResult R = explore(
      P, initialConfiguration(makeTwoPhaseCommitInitialStore(Params)));
  EXPECT_FALSE(R.FailureReachable);
  EXPECT_TRUE(R.Deadlocks.empty());
  ASSERT_FALSE(R.TerminalStores.empty());
  for (const Store &Final : R.TerminalStores)
    EXPECT_TRUE(checkTwoPhaseCommitSpec(Final, Params));
}

TEST(TwoPhaseCommitTest, BothOutcomesReachable) {
  TwoPhaseCommitParams Params{2};
  Program P = makeTwoPhaseCommitProgram(Params);
  ExploreResult R = explore(
      P, initialConfiguration(makeTwoPhaseCommitInitialStore(Params)));
  bool Committed = false, Aborted = false;
  for (const Store &Final : R.TerminalStores) {
    if (Final.get("decision").getSome().getBool())
      Committed = true;
    else
      Aborted = true;
  }
  EXPECT_TRUE(Committed);
  EXPECT_TRUE(Aborted);
}

TEST(TwoPhaseCommitTest, EarlyAbortLeavesVotesInFlight) {
  // The early-abort optimization: after an abort decision, the unread yes
  // votes remain in voteCh in some terminal store.
  TwoPhaseCommitParams Params{2};
  Program P = makeTwoPhaseCommitProgram(Params);
  ExploreResult R = explore(
      P, initialConfiguration(makeTwoPhaseCommitInitialStore(Params)));
  bool LeftoverSeen = false;
  for (const Store &Final : R.TerminalStores)
    if (Final.get("voteCh").bagSize() > 0)
      LeftoverSeen = true;
  EXPECT_TRUE(LeftoverSeen);
}

TEST(TwoPhaseCommitTest, DecisionCanOvertakeRequest) {
  // The paper's optimization: a participant may finalize before
  // processing its own vote request. Witness: a reachable configuration
  // where some finalized[i] is set while reqCh[i] still holds the request.
  TwoPhaseCommitParams Params{2};
  Program P = makeTwoPhaseCommitProgram(Params);
  ExploreResult R = explore(
      P, initialConfiguration(makeTwoPhaseCommitInitialStore(Params)));
  bool Witness = false;
  for (const Configuration &C : R.Reachable) {
    const Store &G = C.global();
    for (int64_t I = 1; I <= 2 && !Witness; ++I) {
      Value Idx = Value::integer(I);
      if (G.get("finalized").mapAt(Idx).isSome() &&
          G.get("reqCh").mapAt(Idx).bagSize() > 0)
        Witness = true;
    }
  }
  EXPECT_TRUE(Witness);
}

TEST(TwoPhaseCommitTest, FourStageIteratedProofIsAccepted) {
  TwoPhaseCommitParams Params{2};
  Program Final = runAllStages(Params);
  ExploreResult R = explore(
      Final,
      initialConfiguration(makeTwoPhaseCommitInitialStore(Params)));
  ASSERT_FALSE(R.TerminalStores.empty());
  for (const Store &FinalStore : R.TerminalStores)
    EXPECT_TRUE(checkTwoPhaseCommitSpec(FinalStore, Params));
  EXPECT_TRUE(checkProgramRefinement(makeTwoPhaseCommitProgram(Params),
                                     Final, {init(Params)})
                  .ok());
}

TEST(TwoPhaseCommitTest, ThreeParticipantStages) {
  TwoPhaseCommitParams Params{3};
  runAllStages(Params);
}

TEST(TwoPhaseCommitTest, OneShotProofIsAccepted) {
  TwoPhaseCommitParams Params{2};
  ISApplication App = makeTwoPhaseCommitOneShotIS(Params);
  ISCheckReport Report = checkIS(App, {init(Params)});
  EXPECT_TRUE(Report.ok()) << Report.str();
  EXPECT_TRUE(
      checkProgramRefinement(App.P, applyIS(App), {init(Params)}).ok());
}

TEST(TwoPhaseCommitTest, MissingDecideAbstractionRejectedOneShot) {
  TwoPhaseCommitParams Params{2};
  ISApplication App = makeTwoPhaseCommitOneShotIS(Params);
  App.Abstractions.erase(Symbol::get("Decide"));
  ISCheckReport Report = checkIS(App, {init(Params)});
  EXPECT_FALSE(Report.ok()) << Report.str();
}

TEST(TwoPhaseCommitTest, SpecRejectsDisagreement) {
  TwoPhaseCommitParams Params{2};
  Store S = makeTwoPhaseCommitInitialStore(Params);
  EXPECT_FALSE(checkTwoPhaseCommitSpec(S, Params)) << "no decision";
  Store Decided =
      S.set("decision", Value::some(Value::boolean(false)))
          .set("finalized",
               Value::map({{Value::integer(1),
                            Value::some(Value::boolean(false))},
                           {Value::integer(2),
                            Value::some(Value::boolean(true))}}));
  EXPECT_FALSE(checkTwoPhaseCommitSpec(Decided, Params));
}
