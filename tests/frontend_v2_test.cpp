//===- tests/frontend_v2_test.cpp - staged frontend differential tests --------------===//
///
/// \file
/// The v2 frontend's acceptance surface, checked against the v1 oracle:
/// every shipped example must compile and verify bit-identically under
/// both pipelines (same verdict JSON modulo timings), the HIR optimizer
/// must be idempotent, the printer must round-trip every example, module
/// resolution must merge diamonds exactly once, parameters must obey the
/// default/override/derived rules, and the two ASL protocol ports
/// (ChangRoberts, ProducerConsumer) must match their native-program
/// twins in src/protocols/ execution for execution.
///
//===----------------------------------------------------------------------===//

#include "driver/ReportRender.h"
#include "driver/VerifyDriver.h"
#include "explorer/Explorer.h"
#include "is/ISCheck.h"
#include "lang/Binder.h"
#include "lang/Frontend.h"
#include "lang/HirBuilder.h"
#include "lang/HirOptimizer.h"
#include "lang/ModuleResolver.h"
#include "lang/Printer.h"
#include "lang/TypeCheck.h"
#include "protocols/ChangRoberts.h"
#include "protocols/ProducerConsumer.h"

#include <gtest/gtest.h>

#include <fstream>
#include <regex>
#include <sstream>

using namespace isq;
using namespace isq::asl;
using namespace isq::driver;

namespace {

std::string examplePath(const std::string &Name) {
  return std::string(ISQ_SOURCE_DIR) + "/examples/asl/" + Name;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "missing file " << Path;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

std::string scrubTimings(const std::string &Json) {
  static const std::regex Seconds("(\"[a-z_]*seconds\":)[0-9.]+");
  std::string Out = std::regex_replace(Json, Seconds, "$010");
  // Obligation-cache telemetry is stats, not verdict: the v1 frontend
  // carries no HIR fingerprints, so its runs are cache-ineligible
  // (cache_enabled false, everything a miss) while v2 runs are eligible.
  // The obligation counts and verdicts still compare strictly.
  static const std::regex Cache(
      "(\"(?:cache_hits|cache_misses|disk_hits)\":)[0-9]+");
  Out = std::regex_replace(Out, Cache, "$010");
  static const std::regex Enabled("(\"cache_enabled\":)(?:true|false)");
  return std::regex_replace(Out, Enabled, "$01false");
}

/// With more than one worker thread the cache telemetry (hash-cons and
/// canonicalization hit counts) and the work-stealing steal count depend
/// on thread interleaving; the verdict, obligations and state counts do
/// not. Multithreaded comparisons zero the telemetry, single-threaded
/// ones stay strict.
std::string scrubSchedulingCounters(const std::string &Json) {
  static const std::regex Counter(
      "(\"(?:hash_cons_lookups|hash_cons_hits|transition_cache_lookups|"
      "transition_cache_hits|canon_calls|canon_cache_hits|steals)\":)"
      "[0-9]+");
  return std::regex_replace(Json, Counter, "$010");
}

/// One example with its documented proof artifacts (the "Verify with:"
/// header), at the smallest instance that exercises the proof.
struct ExampleJob {
  const char *File;
  std::map<std::string, int64_t> Consts;
  std::vector<std::string> Eliminate;
  std::map<std::string, std::string> Abstractions;
  std::map<std::string, uint64_t> Weights;
  bool ArgMajor = false;
};

std::vector<ExampleJob> exampleJobs() {
  return {
      {"ping_pong.asl",
       {{"T", 3}},
       {"Ping", "Pong"},
       {{"Ping", "PingAbs"}, {"Pong", "PongAbs"}},
       {},
       /*ArgMajor=*/true},
      {"broadcast.asl",
       {{"n", 2}},
       {"Broadcast", "Collect"},
       {{"Collect", "CollectAbs"}},
       {},
       /*ArgMajor=*/false},
      {"two_phase_commit.asl",
       {{"n", 2}},
       {"RequestVotes", "Vote", "Decide", "Finalize"},
       {{"Decide", "DecideAbs"}},
       {{"RequestVotes", 8}, {"Decide", 4}},
       /*ArgMajor=*/false},
      // paxos runs at its param defaults (R=2, N=2): no bindings at all.
      {"paxos.asl",
       {},
       {"StartRound", "Join", "Propose", "Vote", "Conclude"},
       {{"Join", "JoinAbs"},
        {"Propose", "ProposeAbs"},
        {"Vote", "VoteAbs"},
        {"Conclude", "ConcludeAbs"}},
       {{"StartRound", 9}, {"Propose", 5}, {"Conclude", 2}},
       /*ArgMajor=*/true},
      {"producer_consumer.asl",
       {{"T", 3}},
       {"Producer", "Consumer"},
       {{"Consumer", "ConsumerAbs"}},
       {},
       /*ArgMajor=*/true},
      {"chang_roberts.asl",
       {{"n", 3}},
       {"Init", "Handle"},
       {},
       {{"Init", 2}},
       /*ArgMajor=*/true},
  };
}

VerifyOptions optionsFor(const ExampleJob &Job,
                         frontend::FrontendVersion Version) {
  VerifyOptions Options;
  Options.Source = readFile(examplePath(Job.File));
  Options.SourcePath = examplePath(Job.File); // imports resolve from here
  Options.Consts = Job.Consts;
  Options.Eliminate = Job.Eliminate;
  Options.Abstractions = Job.Abstractions;
  Options.Weights = Job.Weights;
  if (Job.ArgMajor)
    Options.Order = VerifyOptions::RankOrder::ArgMajor;
  Options.Frontend = Version;
  return Options;
}

/// Compiles \p Job's example under \p Version, failing the test on any
/// diagnostic.
CompiledModule compileExample(const ExampleJob &Job,
                              frontend::FrontendVersion Version) {
  std::vector<Diagnostic> Diags;
  std::optional<CompiledModule> C = frontend::compileSource(
      readFile(examplePath(Job.File)), examplePath(Job.File), Job.Consts,
      Version, Diags);
  EXPECT_TRUE(C.has_value())
      << Job.File << ": " << (Diags.empty() ? "" : Diags[0].str());
  return C ? std::move(*C) : CompiledModule();
}

/// The instantiated (pre-optimizer) HIR of \p Job's example.
hir::Module buildExampleHir(const ExampleJob &Job) {
  SourceManager SM;
  std::vector<Diagnostic> Diags;
  std::optional<Module> M =
      resolveModules(readFile(examplePath(Job.File)), examplePath(Job.File),
                     diskLoader(), SM, Diags);
  EXPECT_TRUE(M.has_value()) << Job.File;
  SymbolTable Syms;
  EXPECT_TRUE(bindModule(*M, Syms, Diags)) << Job.File;
  EXPECT_TRUE(typeCheck(*M, Diags)) << Job.File;
  std::map<std::string, int64_t> Resolved;
  EXPECT_TRUE(resolveConstBindings(*M, Job.Consts, Resolved, Diags))
      << Job.File;
  hir::Module H = buildHir(*M, Syms);
  instantiate(H, Resolved);
  return H;
}

const std::vector<const char *> AllExampleFiles = {
    "broadcast.asl",         "chang_roberts.asl", "lib/ring.asl",
    "paxos.asl",             "ping_pong.asl",     "producer_consumer.asl",
    "two_phase_commit.asl"};

} // namespace

// --- v1/v2 differential over the example corpus ---------------------------

TEST(FrontendV2Test, EveryExampleVerdictBitIdenticalAcrossFrontends) {
  for (const ExampleJob &Job : exampleJobs()) {
    VerifyResult V1 =
        verifyModule(optionsFor(Job, frontend::FrontendVersion::V1));
    VerifyResult V2 =
        verifyModule(optionsFor(Job, frontend::FrontendVersion::V2));
    EXPECT_TRUE(V1.Accepted) << Job.File << ": " << V1.Summary;
    EXPECT_TRUE(V2.Accepted) << Job.File << ": " << V2.Summary;
    EXPECT_EQ(scrubTimings(renderJson(V1)), scrubTimings(renderJson(V2)))
        << Job.File << ": frontends diverge";
  }
}

TEST(FrontendV2Test, EveryExampleProgramShapeMatchesAcrossFrontends) {
  // Beyond the verdict: the compiled artifacts themselves must agree —
  // identical initial store and identical full state space.
  for (const ExampleJob &Job : exampleJobs()) {
    CompiledModule C1 = compileExample(Job, frontend::FrontendVersion::V1);
    CompiledModule C2 = compileExample(Job, frontend::FrontendVersion::V2);
    EXPECT_EQ(C1.InitialStore.str(), C2.InitialStore.str()) << Job.File;
    ExploreResult R1 = explore(C1.P, initialConfiguration(C1.InitialStore));
    ExploreResult R2 = explore(C2.P, initialConfiguration(C2.InitialStore));
    EXPECT_EQ(R1.Stats.NumConfigurations, R2.Stats.NumConfigurations)
        << Job.File;
    EXPECT_EQ(R1.Stats.NumTransitions, R2.Stats.NumTransitions) << Job.File;
    EXPECT_EQ(R1.FailureReachable, R2.FailureReachable) << Job.File;
    ASSERT_EQ(R1.TerminalStores.size(), R2.TerminalStores.size())
        << Job.File;
    for (size_t I = 0; I < R1.TerminalStores.size(); ++I)
      EXPECT_EQ(R1.TerminalStores[I].str(), R2.TerminalStores[I].str())
          << Job.File;
  }
}

// --- HIR optimizer --------------------------------------------------------

TEST(FrontendV2Test, HirOptimizerIsIdempotentOnEveryExample) {
  for (const ExampleJob &Job : exampleJobs()) {
    hir::Module H = buildExampleHir(Job);
    optimizeHir(H);
    std::string Once = hir::print(H);
    optimizeHir(H);
    EXPECT_EQ(Once, hir::print(H))
        << Job.File << ": optimize is not a fixpoint";
  }
}

// --- Printer round-trip ---------------------------------------------------

TEST(FrontendV2Test, PrinterRoundTripsEveryExample) {
  // parse(print(parse(f))) == parse(f), compared via the printer itself:
  // printing the reparsed module must reproduce the first print exactly.
  for (const char *Name : AllExampleFiles) {
    std::vector<Diagnostic> Diags;
    std::optional<Module> First =
        parseModule(readFile(examplePath(Name)), Diags);
    ASSERT_TRUE(First.has_value()) << Name;
    std::string Printed = printModule(*First);
    std::optional<Module> Second = parseModule(Printed, Diags);
    ASSERT_TRUE(Second.has_value())
        << Name << ": printed form does not reparse:\n" << Printed;
    EXPECT_EQ(Printed, printModule(*Second)) << Name;
  }
}

// --- Parametric protocols -------------------------------------------------

TEST(FrontendV2Test, ParamDefaultsOverridesAndDerivedConsts) {
  const char *Source = "param n: int := 2;\n"
                       "const m: int := n * 3;\n"
                       "var x: int := m;\n"
                       "action Main() { skip; }\n";
  for (auto Version :
       {frontend::FrontendVersion::V1, frontend::FrontendVersion::V2}) {
    std::vector<Diagnostic> Diags;
    // Default: n = 2, so the derived m = 6.
    auto Defaulted = frontend::compileSource(Source, "", {}, Version, Diags);
    ASSERT_TRUE(Defaulted.has_value());
    EXPECT_EQ(Defaulted->InitialStore.get("x").getInt(), 6);
    // Override: --param n=5.
    auto Overridden =
        frontend::compileSource(Source, "", {{"n", 5}}, Version, Diags);
    ASSERT_TRUE(Overridden.has_value());
    EXPECT_EQ(Overridden->InitialStore.get("x").getInt(), 15);
    // Derived constants are not externally bindable.
    Diags.clear();
    auto BoundDerived =
        frontend::compileSource(Source, "", {{"m", 9}}, Version, Diags);
    EXPECT_FALSE(BoundDerived.has_value());
    ASSERT_FALSE(Diags.empty());
    EXPECT_NE(Diags[0].Message.find("derived"), std::string::npos)
        << Diags[0].Message;
    // A defaultless param requires a binding.
    Diags.clear();
    auto Unbound = frontend::compileSource(
        "param n: int;\nvar x: int := n;\naction Main() { skip; }\n", "", {},
        Version, Diags);
    EXPECT_FALSE(Unbound.has_value());
    ASSERT_FALSE(Diags.empty());
    EXPECT_NE(Diags[0].Message.find("no binding"), std::string::npos)
        << Diags[0].Message;
  }
}

TEST(FrontendV2Test, PaxosParamInstancesMatchV1ConstPrograms) {
  // The acceptance criterion for parametric protocols: one paxos.asl,
  // instantiated at two sizes via bindings, produces verdicts
  // bit-identical to the v1 (pre-refactor oracle) compilation of the same
  // binding, for every --threads value.
  ExampleJob Paxos = exampleJobs()[3];
  ASSERT_STREQ(Paxos.File, "paxos.asl");
  for (unsigned Threads : {1u, 2u}) {
    VerifyOptions O1 = optionsFor(Paxos, frontend::FrontendVersion::V1);
    VerifyOptions O2 = optionsFor(Paxos, frontend::FrontendVersion::V2);
    O1.Consts = O2.Consts = {{"R", 2}, {"N", 2}};
    O1.Engine.NumThreads = O2.Engine.NumThreads = Threads;
    VerifyResult V1 = verifyModule(O1);
    VerifyResult V2 = verifyModule(O2);
    EXPECT_TRUE(V2.Accepted) << V2.Summary;
    std::string J1 = scrubTimings(renderJson(V1));
    std::string J2 = scrubTimings(renderJson(V2));
    if (Threads > 1) {
      J1 = scrubSchedulingCounters(J1);
      J2 = scrubSchedulingCounters(J2);
    }
    EXPECT_EQ(J1, J2) << "N=2, threads " << Threads;
  }
  // N=3 needs the larger cooperation weights from the example header; the
  // IS check dominates the runtime, so the instance cross-check is
  // skipped and only one thread count is exercised.
  VerifyOptions O1 = optionsFor(Paxos, frontend::FrontendVersion::V1);
  VerifyOptions O2 = optionsFor(Paxos, frontend::FrontendVersion::V2);
  O1.Consts = O2.Consts = {{"R", 2}, {"N", 3}};
  O1.Weights = O2.Weights = {{"StartRound", 11}, {"Propose", 6},
                             {"Conclude", 2}};
  O1.CrossCheck = O2.CrossCheck = false;
  O1.Engine.NumThreads = O2.Engine.NumThreads = 2;
  VerifyResult V1 = verifyModule(O1);
  VerifyResult V2 = verifyModule(O2);
  EXPECT_TRUE(V2.Accepted) << V2.Summary;
  EXPECT_EQ(scrubSchedulingCounters(scrubTimings(renderJson(V1))),
            scrubSchedulingCounters(scrubTimings(renderJson(V2))))
      << "N=3";
}

// --- Module resolution ----------------------------------------------------

TEST(FrontendV2Test, DiamondImportMergesBaseExactlyOnce) {
  std::string Dir = std::string(ISQ_SOURCE_DIR) + "/tests/asl_imports/";
  for (auto Version :
       {frontend::FrontendVersion::V1, frontend::FrontendVersion::V2}) {
    std::vector<Diagnostic> Diags;
    auto C = frontend::compileSource(readFile(Dir + "diamond_main.asl"),
                                     Dir + "diamond_main.asl", {}, Version,
                                     Diags);
    ASSERT_TRUE(C.has_value())
        << (Diags.empty() ? "" : Diags[0].str());
    // Were the base merged twice, its variable would be a diagnosed
    // duplicate and the sum below would see a stale initializer.
    EXPECT_EQ(C->InitialStore.get("base").getInt(), 1);
    EXPECT_EQ(C->InitialStore.get("total").getInt(), 3);
  }
}

// --- Native-vs-ASL protocol differentials ---------------------------------

TEST(FrontendV2Test, ChangRobertsAslMatchesNative) {
  protocols::ChangRobertsParams Params; // 3 nodes, identity IDs
  ISApplication Native = protocols::makeChangRobertsOneShotIS(Params);
  Store NativeInit = protocols::makeChangRobertsInitialStore(Params);
  EXPECT_TRUE(checkIS(Native, {{NativeInit, {}}}).ok());

  ExampleJob Job = exampleJobs()[5];
  ASSERT_STREQ(Job.File, "chang_roberts.asl");
  VerifyResult Asl = verifyModule(optionsFor(Job, frontend::FrontendVersion::V2));
  EXPECT_TRUE(Asl.Accepted) << Asl.Summary;

  // Same state space (modulo the native store's constant-valued n) and
  // the same unique final outcome: only node n leads.
  CompiledModule C = compileExample(Job, frontend::FrontendVersion::V2);
  ExploreResult NativeR =
      explore(Native.P, initialConfiguration(NativeInit));
  ExploreResult AslR = explore(C.P, initialConfiguration(C.InitialStore));
  EXPECT_FALSE(NativeR.FailureReachable);
  EXPECT_FALSE(AslR.FailureReachable);
  EXPECT_EQ(NativeR.Stats.NumConfigurations, AslR.Stats.NumConfigurations);
  EXPECT_EQ(NativeR.Stats.NumTransitions, AslR.Stats.NumTransitions);
  ASSERT_EQ(NativeR.TerminalStores.size(), 1u);
  ASSERT_EQ(AslR.TerminalStores.size(), 1u);
  EXPECT_TRUE(
      protocols::checkChangRobertsSpec(NativeR.TerminalStores[0], Params));
  EXPECT_EQ(NativeR.TerminalStores[0].get("leader").str(),
            AslR.TerminalStores[0].get("leader").str());
  EXPECT_EQ(NativeR.TerminalStores[0].get("id").str(),
            AslR.TerminalStores[0].get("id").str());
}

TEST(FrontendV2Test, ProducerConsumerAslMatchesNative) {
  protocols::ProducerConsumerParams Params; // 3 items
  ISApplication Native = protocols::makeProducerConsumerIS(Params);
  Store NativeInit = protocols::makeProducerConsumerInitialStore(Params);
  EXPECT_TRUE(checkIS(Native, {{NativeInit, {}}}).ok());

  ExampleJob Job = exampleJobs()[4];
  ASSERT_STREQ(Job.File, "producer_consumer.asl");
  VerifyResult Asl = verifyModule(optionsFor(Job, frontend::FrontendVersion::V2));
  EXPECT_TRUE(Asl.Accepted) << Asl.Summary;

  CompiledModule C = compileExample(Job, frontend::FrontendVersion::V2);
  ExploreResult NativeR =
      explore(Native.P, initialConfiguration(NativeInit));
  ExploreResult AslR = explore(C.P, initialConfiguration(C.InitialStore));
  EXPECT_FALSE(NativeR.FailureReachable);
  EXPECT_FALSE(AslR.FailureReachable);
  EXPECT_EQ(NativeR.Stats.NumConfigurations, AslR.Stats.NumConfigurations);
  EXPECT_EQ(NativeR.Stats.NumTransitions, AslR.Stats.NumTransitions);
  ASSERT_EQ(NativeR.TerminalStores.size(), 1u);
  ASSERT_EQ(AslR.TerminalStores.size(), 1u);
  EXPECT_TRUE(protocols::checkProducerConsumerSpec(NativeR.TerminalStores[0],
                                                   Params));
  for (const char *Var : {"queue", "produced", "consumed"})
    EXPECT_EQ(NativeR.TerminalStores[0].get(Var).str(),
              AslR.TerminalStores[0].get(Var).str())
        << Var;
}
