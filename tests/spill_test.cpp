//===- tests/spill_test.cpp - Tiered state store tests ------------------------===//
//
// Tests for the tiered state store (engine/StateArena.h spill mode and
// engine/ColdStore.h):
//
//  - arena-level: eviction triggers under a tiny budget, every spilled
//    item reads back identically, the hot-byte accountant tracks the
//    budget, and adversarial decode-cache access orders stay correct;
//  - engine-level: exploration results are bit-identical with spilling
//    on or off, for every thread count;
//  - cold-store robustness, mirroring the obligation-cache disk suite:
//    truncation at every length and interior bit flips become clean
//    diagnostics (never wrong decodes), stale segments from interrupted
//    runs are cleaned at startup.
//
//===----------------------------------------------------------------------===//

#include "engine/ColdStore.h"
#include "engine/StateArena.h"
#include "explorer/Explorer.h"
#include "protocols/Broadcast.h"
#include "protocols/PingPong.h"
#include "protocols/TwoPhaseCommit.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace isq;
using namespace isq::engine;
using namespace isq::protocols;

namespace {

/// A scratch spill directory, removed (recursively, one level) on
/// destruction. Arenas clean their own segment files; this mops up
/// whatever a test deliberately left behind.
struct TempSpillDir {
  std::string Path;
  TempSpillDir() {
    char Template[] = "/tmp/isq_spill_test_XXXXXX";
    Path = ::mkdtemp(Template);
  }
  ~TempSpillDir() { removeTree(Path, 0); }
  static void removeTree(const std::string &Dir, int Depth) {
    if (Depth > 4)
      return;
    if (DIR *Handle = ::opendir(Dir.c_str())) {
      while (struct dirent *Entry = ::readdir(Handle)) {
        std::string Name = Entry->d_name;
        if (Name == "." || Name == "..")
          continue;
        std::string Full = Dir + "/" + Name;
        if (::unlink(Full.c_str()) != 0)
          removeTree(Full, Depth + 1);
      }
      ::closedir(Handle);
    }
    ::rmdir(Dir.c_str());
  }
};

StateArena::SpillOptions spillOpts(const TempSpillDir &Dir,
                                   uint64_t Budget) {
  StateArena::SpillOptions Opts;
  Opts.Enabled = true;
  Opts.Dir = Dir.Path;
  Opts.MemBudget = Budget;
  return Opts;
}

/// N distinct single-variable stores; enough of them fills many spill
/// blocks even in one shard.
Store numberedStore(int64_t I) {
  Store S;
  S = S.set(Symbol::get("x"), Value::integer(I));
  S = S.set(Symbol::get("y"), Value::integer(I * 7 + 1));
  return S;
}

std::vector<std::string> segmentFiles(const std::string &Base) {
  std::vector<std::string> Out;
  if (DIR *Top = ::opendir(Base.c_str())) {
    while (struct dirent *Entry = ::readdir(Top)) {
      std::string Name = Entry->d_name;
      if (Name.rfind("arena-", 0) != 0)
        continue;
      std::string Sub = Base + "/" + Name;
      if (DIR *Inner = ::opendir(Sub.c_str())) {
        while (struct dirent *Seg = ::readdir(Inner)) {
          std::string SegName = Seg->d_name;
          if (SegName.size() > 7 &&
              SegName.compare(SegName.size() - 7, 7, ".isqseg") == 0)
            Out.push_back(Sub + "/" + SegName);
        }
        ::closedir(Inner);
      }
    }
    ::closedir(Top);
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Arena-level spilling
//===----------------------------------------------------------------------===//

TEST(SpillArenaTest, EvictsUnderBudgetAndReadsBackIdentically) {
  TempSpillDir Dir;
  constexpr uint64_t Budget = 8 * 1024;
  StateArena Arena(/*Shards=*/1, /*Compress=*/true, spillOpts(Dir, Budget));
  EXPECT_TRUE(Arena.spilling());

  constexpr int64_t N = 4000; // ~7 sealed blocks of 512 in one shard
  std::vector<StoreId> Ids;
  Ids.reserve(N);
  for (int64_t I = 0; I < N; ++I)
    Ids.push_back(Arena.internStore(numberedStore(I)));

  ArenaStats Stats = Arena.stats();
  EXPECT_TRUE(Stats.SpillEnabled);
  EXPECT_EQ(Stats.MemBudget, Budget);
  EXPECT_GT(Stats.BlocksEvicted, 0u);
  EXPECT_GT(Stats.BytesCold, 0u);
  // The accountant keeps hot bytes near the budget: everything evictable
  // beyond it has been pushed cold (the unsealed tail block stays hot).
  EXPECT_LT(Stats.BytesHot, Stats.BytesCold);

  // Every id — hot, sealed or evicted — reads back its exact value.
  for (int64_t I = 0; I < N; ++I)
    ASSERT_EQ(Arena.store(Ids[I]), numberedStore(I)) << I;
  EXPECT_GT(Arena.stats().BlocksFaulted, 0u);
}

TEST(SpillArenaTest, InterningAfterEvictionStillDedups) {
  TempSpillDir Dir;
  StateArena Arena(/*Shards=*/1, /*Compress=*/true, spillOpts(Dir, 4096));
  std::vector<StoreId> Ids;
  for (int64_t I = 0; I < 2000; ++I)
    Ids.push_back(Arena.internStore(numberedStore(I)));
  ASSERT_GT(Arena.stats().BlocksEvicted, 0u);
  // Re-interning an evicted store's value must find the existing id (the
  // equality probe faults the cold block instead of re-adding).
  for (int64_t I = 0; I < 2000; I += 97)
    EXPECT_EQ(Arena.internStore(numberedStore(I)), Ids[I]) << I;
}

TEST(SpillArenaTest, PaBagsSpillAndReadBack) {
  TempSpillDir Dir;
  StateArena Arena(/*Shards=*/1, /*Compress=*/true, spillOpts(Dir, 2048));
  std::vector<PaSetId> Ids;
  for (int64_t I = 0; I < 1500; ++I) {
    PaMultiset Omega;
    Omega.insert(PendingAsync(Symbol::get("A"), {Value::integer(I)}));
    Omega.insert(PendingAsync(Symbol::get("B"), {Value::integer(I % 5)}));
    Ids.push_back(Arena.internPaSet(Omega));
  }
  ASSERT_GT(Arena.stats().BlocksEvicted, 0u);
  for (int64_t I = 0; I < 1500; ++I) {
    const PaCountVec &Vec = Arena.paVec(Ids[I]);
    ASSERT_EQ(Vec.size(), 2u) << I;
  }
}

// Adversarial decode-cache access order (satellite): more distinct items
// than DecodeCacheCapacity, read backwards and in large strides so the
// FIFO caches keep evicting; every read must still decode the right
// value. Run once hot-only and once with spilling, so the cold fault
// path sees the same adversarial order.
TEST(SpillArenaTest, AdversarialDecodeOrderStaysCorrect) {
  for (bool Spill : {false, true}) {
    TempSpillDir Dir;
    StateArena Arena(/*Shards=*/1, /*Compress=*/true,
                     Spill ? spillOpts(Dir, 16 * 1024)
                           : StateArena::SpillOptions());
    const int64_t N =
        static_cast<int64_t>(StateArena::DecodeCacheCapacity) + 1500;
    std::vector<StoreId> Ids;
    Ids.reserve(N);
    for (int64_t I = 0; I < N; ++I)
      Ids.push_back(Arena.internStore(numberedStore(I)));
    // Backwards: every access misses a FIFO warmed by forward interning.
    for (int64_t I = N - 1; I >= 0; I -= 3)
      ASSERT_EQ(Arena.store(Ids[I]), numberedStore(I)) << "spill=" << Spill;
    // Large prime stride, two laps: revisits after capacity evictions.
    for (int64_t Lap = 0; Lap < 2; ++Lap)
      for (int64_t I = (Lap * 2741) % N, Seen = 0; Seen < N / 7;
           ++Seen, I = (I + 2741) % N)
        ASSERT_EQ(Arena.store(Ids[I]), numberedStore(I)) << "spill=" << Spill;
  }
}

//===----------------------------------------------------------------------===//
// Engine-level bit-identity
//===----------------------------------------------------------------------===//

struct Instance {
  std::string Name;
  Program P;
  Store Init;
};

std::vector<Instance> instances() {
  std::vector<Instance> Out;
  PingPongParams PP{3};
  Out.push_back({"pingpong", makePingPongProgram(PP),
                 makePingPongInitialStore(PP)});
  BroadcastParams BC{3, {}};
  Out.push_back({"broadcast", makeBroadcastProgram(BC),
                 makeBroadcastInitialStore(BC)});
  TwoPhaseCommitParams TP{3};
  Out.push_back({"2pc", makeTwoPhaseCommitProgram(TP),
                 makeTwoPhaseCommitInitialStore(TP)});
  return Out;
}

void expectIdentical(const ExploreResult &A, const ExploreResult &B,
                     const std::string &Context) {
  EXPECT_EQ(A.Reachable, B.Reachable) << Context;
  EXPECT_EQ(A.FailureReachable, B.FailureReachable) << Context;
  EXPECT_EQ(A.TerminalStores, B.TerminalStores) << Context;
  EXPECT_EQ(A.Deadlocks, B.Deadlocks) << Context;
  EXPECT_EQ(A.Stats.NumConfigurations, B.Stats.NumConfigurations) << Context;
  EXPECT_EQ(A.Stats.NumTransitions, B.Stats.NumTransitions) << Context;
  EXPECT_EQ(A.Engine.FrontierPeak, B.Engine.FrontierPeak) << Context;
  EXPECT_EQ(A.Engine.InternedStores, B.Engine.InternedStores) << Context;
  EXPECT_EQ(A.Engine.InternedConfigs, B.Engine.InternedConfigs) << Context;
}

TEST(SpillEngineTest, BitIdenticalToHotOnlyStoreForEveryThreadCount) {
  for (const Instance &I : instances()) {
    ExploreOptions Plain;
    Plain.Config.NumThreads = 1;
    Plain.Config.Compress = true;
    ExploreResult Base = explore(I.P, initialConfiguration(I.Init), Plain);

    for (unsigned Threads : {1u, 2u, 8u}) {
      TempSpillDir Dir;
      ExploreOptions Spilled = Plain;
      Spilled.Config.NumThreads = Threads;
      Spilled.Config.Shards = 1; // concentrate items so blocks seal
      Spilled.Config.Spill = true;
      Spilled.Config.SpillDir = Dir.Path;
      Spilled.Config.MemBudget = 2048; // tiny: evict nearly everything
      ExploreResult R = explore(I.P, initialConfiguration(I.Init), Spilled);
      EXPECT_TRUE(R.Engine.SpillEnabled) << I.Name;
      expectIdentical(Base, R,
                      I.Name + " spilled @" + std::to_string(Threads) +
                          " threads");
    }
  }
}

TEST(SpillEngineTest, EvictionActuallyTriggersOnAProtocol) {
  // A protocol big enough to seal blocks (broadcast interns ~2^N distinct
  // stores and PA-bags) must push blocks cold under a tiny budget — and
  // still agree with the hot-only oracle exactly.
  BroadcastParams BC{10, {}};
  Program P = makeBroadcastProgram(BC);
  Configuration Init = initialConfiguration(makeBroadcastInitialStore(BC));

  ExploreOptions Plain;
  Plain.Config.NumThreads = 2;
  Plain.Config.Compress = true;
  ExploreResult Base = explore(P, Init, Plain);

  TempSpillDir Dir;
  ExploreOptions Opts = Plain;
  Opts.Config.Shards = 1;
  Opts.Config.Spill = true;
  Opts.Config.SpillDir = Dir.Path;
  Opts.Config.MemBudget = 16 * 1024;
  ExploreResult R = explore(P, Init, Opts);
  EXPECT_GT(R.Engine.BlocksEvicted, 0u);
  EXPECT_GT(R.Engine.BytesCold, 0u);
  EXPECT_LE(R.Engine.BytesHot + R.Engine.BytesCold + 1,
            2 * R.Engine.CompressedBytes);
  expectIdentical(Base, R, "broadcast-10 spilled");
}

TEST(SpillEngineTest, SegmentsAreRemovedWhenTheArenaDies) {
  TempSpillDir Dir;
  {
    StateArena Arena(/*Shards=*/1, /*Compress=*/true,
                     spillOpts(Dir, 2048));
    for (int64_t I = 0; I < 2000; ++I)
      Arena.internStore(numberedStore(I));
    ASSERT_GT(Arena.stats().BlocksEvicted, 0u);
    ASSERT_FALSE(segmentFiles(Dir.Path).empty());
  }
  EXPECT_TRUE(segmentFiles(Dir.Path).empty());
}

//===----------------------------------------------------------------------===//
// Cold-store robustness (mirrors the obligation-cache disk suite)
//===----------------------------------------------------------------------===//

std::vector<uint32_t> endsOf(const std::vector<std::string> &Items) {
  std::vector<uint32_t> Ends;
  uint32_t Acc = 0;
  for (const std::string &S : Items) {
    Acc += static_cast<uint32_t>(S.size());
    Ends.push_back(Acc);
  }
  return Ends;
}

std::string payloadOf(const std::vector<std::string> &Items) {
  std::string Out;
  for (const std::string &S : Items)
    Out += S;
  return Out;
}

std::vector<std::string> sampleItems() {
  std::vector<std::string> Items;
  for (int I = 0; I < 64; ++I)
    Items.push_back("item-" + std::to_string(I * I) +
                    std::string(I % 7, '#'));
  return Items;
}

TEST(ColdStoreTest, RoundTripsEveryItem) {
  TempSpillDir Dir;
  ColdStore Cold(Dir.Path + "/arena-0");
  std::vector<std::string> Items = sampleItems();
  ColdStore::BlockRef Ref =
      Cold.appendBlock(endsOf(Items), payloadOf(Items).data(),
                       payloadOf(Items).size());
  ColdStore::MappedBlock B = Cold.map(Ref, /*Verify=*/true);
  ASSERT_EQ(B.Count, Items.size());
  for (size_t I = 0; I < Items.size(); ++I) {
    const char *Begin = B.Payload + (I ? B.Ends[I - 1] : 0);
    const char *End = B.Payload + B.Ends[I];
    EXPECT_EQ(std::string(Begin, End), Items[I]) << I;
  }
  EXPECT_GT(Cold.bytesWritten(), 0u);
}

TEST(ColdStoreTest, TruncationAtEveryLengthIsACleanDiagnostic) {
  TempSpillDir Dir;
  ColdStore Cold(Dir.Path + "/arena-0");
  std::vector<std::string> Items = sampleItems();
  std::string Payload = payloadOf(Items);
  ColdStore::BlockRef Ref =
      Cold.appendBlock(endsOf(Items), Payload.data(), Payload.size());
  ASSERT_NO_THROW(Cold.map(Ref, true));

  std::vector<std::string> Segs = segmentFiles(Dir.Path);
  ASSERT_EQ(Segs.size(), 1u);
  // Interrupted-writer simulation: every prefix of the record region is
  // rejected with a diagnostic (the fstat guard fires before any page
  // past EOF is touched, so no SIGBUS either).
  for (uint64_t Len = Ref.Offset + Ref.Length; Len-- > 0;) {
    ASSERT_EQ(::truncate(Segs[0].c_str(), static_cast<off_t>(Len)), 0);
    EXPECT_THROW(Cold.map(Ref, true), std::runtime_error) << Len;
  }
}

TEST(ColdStoreTest, InteriorBitFlipFailsChecksumNotDecode) {
  std::vector<std::string> Items = sampleItems();
  std::string Payload = payloadOf(Items);
  // Flip one byte at a time across the whole record: header fields hit
  // the magic/framing checks, ends table and payload hit the checksum.
  // Nothing maps successfully.
  for (uint64_t Offset : {0ull, 5ull, 17ull, 30ull, 90ull, 300ull}) {
    TempSpillDir Dir;
    ColdStore Cold(Dir.Path + "/arena-0");
    ColdStore::BlockRef Ref =
        Cold.appendBlock(endsOf(Items), Payload.data(), Payload.size());
    ASSERT_LT(Offset, Ref.Length);
    std::vector<std::string> Segs = segmentFiles(Dir.Path);
    ASSERT_EQ(Segs.size(), 1u);
    {
      std::fstream F(Segs[0],
                     std::ios::in | std::ios::out | std::ios::binary);
      ASSERT_TRUE(F.good());
      F.seekg(static_cast<std::streamoff>(Ref.Offset + Offset));
      char C = 0;
      F.get(C);
      F.seekp(static_cast<std::streamoff>(Ref.Offset + Offset));
      F.put(static_cast<char>(C ^ 0x40));
    }
    EXPECT_THROW(Cold.map(Ref, true), std::runtime_error)
        << "offset " << Offset;
  }
}

TEST(ColdStoreTest, CorruptionSurfacesThroughTheArenaAsAnError) {
  TempSpillDir Dir;
  StateArena Arena(/*Shards=*/1, /*Compress=*/true, spillOpts(Dir, 2048));
  std::vector<StoreId> Ids;
  for (int64_t I = 0; I < 2000; ++I)
    Ids.push_back(Arena.internStore(numberedStore(I)));
  ASSERT_GT(Arena.stats().BlocksEvicted, 0u);

  // Flip a byte every 24 bytes of every segment's written region (the
  // file itself is a sparse 64 MiB; only ~BytesCold bytes carry records):
  // every spilled block is damaged somewhere (header or body).
  off_t WrittenEnd =
      static_cast<off_t>(Arena.stats().BytesCold) + 4096 + 16;
  for (const std::string &Seg : segmentFiles(Dir.Path)) {
    std::fstream F(Seg, std::ios::in | std::ios::out | std::ios::binary);
    for (off_t Pos = 16; Pos < WrittenEnd; Pos += 24) {
      F.seekg(Pos);
      char C = 0;
      F.get(C);
      F.seekp(Pos);
      F.put(static_cast<char>(C ^ 0x01));
    }
  }

  // Reads of evicted items now throw (fresh decode caches, so each read
  // faults cold and verifies); nothing ever returns a wrong store.
  size_t Throws = 0;
  for (int64_t I = 0; I < 2000; ++I) {
    try {
      Store S = Arena.store(Ids[I]);
      EXPECT_EQ(S, numberedStore(I)) << I; // hot items still correct
    } catch (const std::runtime_error &) {
      ++Throws;
    }
  }
  EXPECT_GT(Throws, 0u);
}

TEST(ColdStoreTest, StaleSegmentsAreCleanedAtStartup) {
  TempSpillDir Dir;
  std::string ArenaDir = Dir.Path + "/arena-0";
  ASSERT_EQ(::mkdir(ArenaDir.c_str(), 0755), 0);
  {
    std::ofstream Stale(ArenaDir + "/seg-0.isqseg");
    Stale << "left over by an interrupted run";
  }
  {
    std::ofstream Other(ArenaDir + "/notes.txt");
    Other << "unrelated";
  }
  ColdStore Cold(ArenaDir);
  struct stat St;
  EXPECT_NE(::stat((ArenaDir + "/seg-0.isqseg").c_str(), &St), 0);
  EXPECT_EQ(::stat((ArenaDir + "/notes.txt").c_str(), &St), 0);
}

TEST(ColdStoreTest, BlockRefOutsideBoundsIsRejected) {
  TempSpillDir Dir;
  ColdStore Cold(Dir.Path + "/arena-0");
  ColdStore::BlockRef Bogus;
  EXPECT_THROW(Cold.map(Bogus, true), std::runtime_error);
  Bogus.Segment = 0;
  Bogus.Offset = 16;
  Bogus.Length = 64;
  // Segment 0 was never opened (nothing appended).
  EXPECT_THROW(Cold.map(Bogus, true), std::runtime_error);
}

} // namespace
