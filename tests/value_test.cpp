//===- tests/value_test.cpp - Value domain unit tests -----------------------===//

#include "semantics/Value.h"

#include <gtest/gtest.h>

using namespace isq;

TEST(ValueTest, Scalars) {
  EXPECT_TRUE(Value::unit().isUnit());
  EXPECT_TRUE(Value::boolean(true).getBool());
  EXPECT_FALSE(Value::boolean(false).getBool());
  EXPECT_EQ(Value::integer(-7).getInt(), -7);
  EXPECT_EQ(Value::integer(0), Value::integer(0));
  EXPECT_NE(Value::integer(0), Value::integer(1));
}

TEST(ValueTest, KindsAreOrderedBeforeContents) {
  // bool sorts before int by kind, regardless of payload.
  EXPECT_LT(Value::boolean(true), Value::integer(-100));
}

TEST(ValueTest, TupleAccess) {
  Value T = Value::tuple({Value::integer(1), Value::boolean(true)});
  EXPECT_EQ(T.size(), 2u);
  EXPECT_EQ(T.elem(0).getInt(), 1);
  EXPECT_TRUE(T.elem(1).getBool());
  EXPECT_EQ(T.str(), "(1, true)");
}

TEST(ValueTest, Options) {
  EXPECT_TRUE(Value::none().isNone());
  Value S = Value::some(Value::integer(5));
  EXPECT_TRUE(S.isSome());
  EXPECT_EQ(S.getSome().getInt(), 5);
  EXPECT_NE(Value::none(), S);
  EXPECT_LT(Value::none(), S);
}

TEST(ValueTest, SetsAreCanonical) {
  Value A = Value::set({Value::integer(3), Value::integer(1),
                        Value::integer(3)});
  Value B = Value::set({Value::integer(1), Value::integer(3)});
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.hash(), B.hash());
  EXPECT_EQ(A.setSize(), 2u);
}

TEST(ValueTest, SetOperations) {
  Value S = Value::set({Value::integer(1)});
  EXPECT_TRUE(S.setContains(Value::integer(1)));
  EXPECT_FALSE(S.setContains(Value::integer(2)));
  Value S2 = S.setInsert(Value::integer(2));
  EXPECT_TRUE(S2.setContains(Value::integer(2)));
  EXPECT_FALSE(S.setContains(Value::integer(2))) << "values are immutable";
  Value S3 = S2.setErase(Value::integer(1));
  EXPECT_FALSE(S3.setContains(Value::integer(1)));
  EXPECT_TRUE(S.setIsSubsetOf(S2));
  EXPECT_FALSE(S2.setIsSubsetOf(S));
}

TEST(ValueTest, BagMultiplicity) {
  Value B = Value::bag({Value::integer(1), Value::integer(1),
                        Value::integer(2)});
  EXPECT_EQ(B.bagSize(), 3u);
  EXPECT_EQ(B.bagCount(Value::integer(1)), 2u);
  EXPECT_EQ(B.bagCount(Value::integer(9)), 0u);
  Value B2 = B.bagInsert(Value::integer(2));
  EXPECT_EQ(B2.bagCount(Value::integer(2)), 2u);
  Value B3 = B2.bagErase(Value::integer(1), 2);
  EXPECT_EQ(B3.bagCount(Value::integer(1)), 0u);
  EXPECT_EQ(B3.bagSize(), 2u);
}

TEST(ValueTest, BagOrderInsensitive) {
  Value A = Value::bag({Value::integer(2), Value::integer(1)});
  Value B = Value::bag({Value::integer(1), Value::integer(2)});
  EXPECT_EQ(A, B);
}

TEST(ValueTest, BagFlatten) {
  Value B = Value::bag({Value::integer(2), Value::integer(1),
                        Value::integer(2)});
  std::vector<Value> F = B.bagFlatten();
  ASSERT_EQ(F.size(), 3u);
  EXPECT_EQ(F[0].getInt(), 1);
  EXPECT_EQ(F[1].getInt(), 2);
  EXPECT_EQ(F[2].getInt(), 2);
}

TEST(ValueTest, SubBagsOfSize) {
  Value B = Value::bag({Value::integer(1), Value::integer(1),
                        Value::integer(2)});
  // Size-2 sub-bags of {1,1,2}: {1,1} and {1,2}.
  std::vector<Value> Subs = B.bagSubBagsOfSize(2);
  ASSERT_EQ(Subs.size(), 2u);
  for (const Value &S : Subs)
    EXPECT_EQ(S.bagSize(), 2u);
  // Size equal to the bag returns the bag itself.
  std::vector<Value> All = B.bagSubBagsOfSize(3);
  ASSERT_EQ(All.size(), 1u);
  EXPECT_EQ(All[0], B);
  // Oversized requests yield nothing; the empty sub-bag always exists.
  EXPECT_TRUE(B.bagSubBagsOfSize(4).empty());
  EXPECT_EQ(B.bagSubBagsOfSize(0).size(), 1u);
}

TEST(ValueTest, MapOperations) {
  Value M = Value::map({{Value::integer(1), Value::integer(10)},
                        {Value::integer(2), Value::integer(20)}});
  EXPECT_EQ(M.mapSize(), 2u);
  EXPECT_TRUE(M.mapContains(Value::integer(1)));
  EXPECT_EQ(M.mapAt(Value::integer(2)).getInt(), 20);
  EXPECT_FALSE(M.mapGet(Value::integer(3)).has_value());
  Value M2 = M.mapSet(Value::integer(1), Value::integer(11));
  EXPECT_EQ(M2.mapAt(Value::integer(1)).getInt(), 11);
  EXPECT_EQ(M.mapAt(Value::integer(1)).getInt(), 10) << "immutability";
  Value M3 = M2.mapSet(Value::integer(3), Value::integer(30));
  EXPECT_EQ(M3.mapSize(), 3u);
  Value M4 = M3.mapErase(Value::integer(2));
  EXPECT_FALSE(M4.mapContains(Value::integer(2)));
  EXPECT_EQ(M4.mapKeys().size(), 2u);
}

TEST(ValueTest, SeqFifoOperations) {
  Value Q = Value::seq({});
  Q = Q.seqPushBack(Value::integer(1));
  Q = Q.seqPushBack(Value::integer(2));
  EXPECT_EQ(Q.seqSize(), 2u);
  EXPECT_EQ(Q.seqFront().getInt(), 1);
  Value Q2 = Q.seqPopFront();
  EXPECT_EQ(Q2.seqFront().getInt(), 2);
  EXPECT_EQ(Q2.seqSize(), 1u);
}

TEST(ValueTest, SeqOrderMatters) {
  Value A = Value::seq({Value::integer(1), Value::integer(2)});
  Value B = Value::seq({Value::integer(2), Value::integer(1)});
  EXPECT_NE(A, B) << "sequences are ordered, unlike bags";
}

TEST(ValueTest, NestedValues) {
  Value Inner = Value::bag({Value::integer(1)});
  Value M = Value::map({{Value::integer(1), Inner}});
  Value M2 = M.mapSet(Value::integer(1),
                      M.mapAt(Value::integer(1)).bagInsert(Value::integer(2)));
  EXPECT_EQ(M2.mapAt(Value::integer(1)).bagSize(), 2u);
  EXPECT_EQ(M.mapAt(Value::integer(1)).bagSize(), 1u);
}

TEST(ValueTest, Printing) {
  EXPECT_EQ(Value::bag({Value::integer(1), Value::integer(1)}).str(),
            "bag{1:x2}");
  EXPECT_EQ(Value::map({{Value::integer(1), Value::boolean(false)}}).str(),
            "map{1 -> false}");
  EXPECT_EQ(Value::seq({Value::integer(3)}).str(), "seq[3]");
  EXPECT_EQ(Value::some(Value::unit()).str(), "some(())");
}

TEST(ValueTest, TotalOrderIsConsistent) {
  std::vector<Value> Vs = {
      Value::unit(),
      Value::boolean(false),
      Value::integer(1),
      Value::tuple({Value::integer(1)}),
      Value::none(),
      Value::set({Value::integer(1)}),
      Value::bag({Value::integer(1)}),
      Value::map({}),
      Value::seq({Value::integer(1)}),
  };
  for (size_t I = 0; I < Vs.size(); ++I)
    for (size_t J = 0; J < Vs.size(); ++J) {
      if (I == J) {
        EXPECT_EQ(Vs[I], Vs[J]);
        continue;
      }
      // Exactly one of <, > holds for distinct values.
      EXPECT_NE(Vs[I] < Vs[J], Vs[J] < Vs[I]);
      EXPECT_NE(Vs[I], Vs[J]);
    }
}
