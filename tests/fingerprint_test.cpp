//===- tests/fingerprint_test.cpp - Fingerprint stability ---------------------===//
///
/// \file
/// Stability tests for the semantic fingerprints behind the obligation
/// verdict cache, plus the cache's serialization and disk robustness:
///
///  - golden action fingerprints for the example corpus (set
///    ISQ_UPDATE_GOLDEN=1 to regenerate after an intentional
///    fingerprint-format change — any unintentional drift invalidates
///    every cache in the field);
///  - α-irrelevance: comments, whitespace, binder names, and
///    optimizer-removed statements don't move fingerprints;
///  - dependency precision: editing one action's gate changes exactly
///    that action's fingerprint;
///  - unit-sequence encode/decode round-trips, and corrupted or
///    truncated cache images degrade to cold lookups, never to wrong
///    decodes.
///
//===----------------------------------------------------------------------===//

#include "engine/ObligationCache.h"
#include "lang/Frontend.h"
#include "semantics/Action.h"
#include "semantics/Fingerprint.h"
#include "semantics/Program.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include <sys/stat.h>
#include <unistd.h>

using namespace isq;
using asl::frontend::FrontendVersion;

namespace {

std::string readExample(const std::string &Name) {
  std::string Path = std::string(ISQ_SOURCE_DIR) + "/examples/asl/" + Name;
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << Path;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

Program compile(const std::string &Source, const std::string &Path,
                const std::map<std::string, int64_t> &Consts = {}) {
  std::vector<asl::Diagnostic> Diags;
  auto Compiled = asl::frontend::compileSource(Source, Path, Consts,
                                               FrontendVersion::V2, Diags);
  EXPECT_TRUE(Compiled.has_value()) << Path;
  return Compiled->P;
}

std::string hex(const Fingerprint &F) {
  char Buf[36];
  std::snprintf(Buf, sizeof(Buf), "%016llx%016llx",
                static_cast<unsigned long long>(F.Hi),
                static_cast<unsigned long long>(F.Lo));
  return Buf;
}

/// The example corpus with the constants its "Verify with:" headers bind.
const std::vector<std::pair<const char *, std::map<std::string, int64_t>>> &
exampleCorpus() {
  static const std::vector<std::pair<const char *, std::map<std::string, int64_t>>>
      Corpus = {
          {"broadcast.asl", {{"n", 3}}},
          {"ping_pong.asl", {{"T", 3}}},
          {"producer_consumer.asl", {}},
          {"two_phase_commit.asl", {}},
          {"paxos.asl", {}},
      };
  return Corpus;
}

/// A tiny self-contained module for the edit-sensitivity tests: two
/// actions with disjoint behaviors, so an edit to one must leave the
/// other's fingerprint untouched.
const char *TwoActionModule = R"(
var x: int := 0;
var y: int := 0;

action Main() {
  async Inc();
  async Dec();
}

action Inc() {
  if x < 5 {
    x := x + 1;
  }
}

action Dec() {
  if y < 7 {
    y := y - 1;
  }
}
)";

} // namespace

// --- Golden corpus fingerprints -----------------------------------------

TEST(FingerprintTest, GoldenCorpusFingerprints) {
  std::string Rendered;
  for (const auto &[File, Consts] : exampleCorpus()) {
    Program P = compile(readExample(File), std::string(ISQ_SOURCE_DIR) +
                                               "/examples/asl/" + File,
                        Consts);
    for (Symbol A : P.actionNames())
      Rendered += std::string(File) + " " + A.str() + " " +
                  hex(P.action(A).fp()) + "\n";
  }
  std::string Path =
      std::string(ISQ_SOURCE_DIR) + "/tests/golden/fingerprints.txt";
  if (std::getenv("ISQ_UPDATE_GOLDEN")) {
    std::ofstream Out(Path);
    Out << Rendered;
    return;
  }
  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << "no golden fingerprints at " << Path
                         << " (generate with ISQ_UPDATE_GOLDEN=1)";
  std::stringstream Golden;
  Golden << In.rdbuf();
  EXPECT_EQ(Golden.str(), Rendered)
      << "action fingerprints drifted: an intentional format change must "
         "bump FpFormatVersion and regenerate with ISQ_UPDATE_GOLDEN=1; "
         "anything else silently invalidates (or worse, silently "
         "revalidates) every on-disk cache";
}

TEST(FingerprintTest, CorpusFingerprintsNonZeroAndDistinctWithinModule) {
  for (const auto &[File, Consts] : exampleCorpus()) {
    Program P = compile(readExample(File), std::string(ISQ_SOURCE_DIR) +
                                               "/examples/asl/" + File,
                        Consts);
    std::map<std::string, std::string> ByFp;
    for (Symbol A : P.actionNames()) {
      const Fingerprint &F = P.action(A).fp();
      EXPECT_FALSE(F.isZero()) << File << "/" << A.str();
      auto [It, Fresh] = ByFp.emplace(hex(F), A.str());
      EXPECT_TRUE(Fresh) << File << ": " << A.str() << " collides with "
                         << It->second;
    }
  }
}

// --- α-irrelevance ------------------------------------------------------

TEST(FingerprintTest, CommentsAndWhitespaceDoNotMoveFingerprints) {
  std::string Source = readExample("broadcast.asl");
  Program Base = compile(Source, "broadcast.asl", {{"n", 3}});
  std::string Mangled = "// a new leading comment\n" + Source;
  size_t Brace = Mangled.find('{');
  ASSERT_NE(Brace, std::string::npos);
  Mangled.insert(Brace + 1, "\n\n  // an interior comment\n\n");
  Program Edited = compile(Mangled, "broadcast.asl", {{"n", 3}});
  for (Symbol A : Base.actionNames())
    EXPECT_EQ(hex(Base.action(A).fp()), hex(Edited.action(A).fp()))
        << A.str();
}

TEST(FingerprintTest, BinderRenameDoesNotMoveFingerprints) {
  const char *WithI = R"(
var total: int := 0;
action Main() {
  for i in 1 .. 3 {
    total := total + i;
  }
}
)";
  const char *WithK = R"(
var total: int := 0;
action Main() {
  for k in 1 .. 3 {
    total := total + k;
  }
}
)";
  Program A = compile(WithI, "binder_a.asl");
  Program B = compile(WithK, "binder_b.asl");
  EXPECT_EQ(hex(A.action("Main").fp()), hex(B.action("Main").fp()));
}

TEST(FingerprintTest, OptimizedAwayStatementDoesNotMoveFingerprint) {
  // Fingerprints are taken on *optimized* HIR: a trivially true assert is
  // folded away, so sources the optimizer proves equivalent fingerprint
  // identically.
  Program Base = compile(TwoActionModule, "two_action.asl");
  std::string WithAssert = TwoActionModule;
  size_t Pos = WithAssert.find("x := x + 1;");
  ASSERT_NE(Pos, std::string::npos);
  WithAssert.insert(Pos, "assert 0 == 0;\n    ");
  Program Edited = compile(WithAssert, "two_action.asl");
  EXPECT_EQ(hex(Base.action("Inc").fp()), hex(Edited.action("Inc").fp()));
}

// --- Dependency precision -----------------------------------------------

TEST(FingerprintTest, GateEditMovesExactlyTheEditedAction) {
  Program Base = compile(TwoActionModule, "two_action.asl");
  std::string Edited = TwoActionModule;
  size_t Pos = Edited.find("x < 5");
  ASSERT_NE(Pos, std::string::npos);
  Edited.replace(Pos, 5, "x < 6");
  Program P2 = compile(Edited, "two_action.asl");
  EXPECT_NE(hex(Base.action("Inc").fp()), hex(P2.action("Inc").fp()))
      << "a gate edit must move the edited action's fingerprint";
  EXPECT_EQ(hex(Base.action("Dec").fp()), hex(P2.action("Dec").fp()))
      << "an edit to Inc must not move Dec";
  EXPECT_EQ(hex(Base.action("Main").fp()), hex(P2.action("Main").fp()))
      << "an edit to Inc must not move Main";
}

// --- Unit-sequence serialization ----------------------------------------

namespace {

std::vector<engine::ObUnit> sampleUnits() {
  using engine::ObKey;
  using engine::ObUnit;
  std::vector<ObUnit> Units;
  ObUnit Keyed;
  Keyed.Key = ObKey{7, 0x1111222233334444ULL, 0x5555666677778888ULL, 42};
  Keyed.Channel = 1;
  Keyed.Obligations = 19;
  Keyed.Failures = 2;
  Keyed.Issues = {"first issue", "second issue with ünïcode"};
  Units.push_back(Keyed);
  ObUnit Keyless; // Tag == NoDedup: the key words are not serialized
  Keyless.Obligations = 3;
  Units.push_back(Keyless);
  ObUnit Empty;
  Empty.Key = ObKey{0, 1, 2, 3};
  Units.push_back(Empty);
  return Units;
}

void expectSameUnits(const std::vector<engine::ObUnit> &A,
                     const std::vector<engine::ObUnit> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_TRUE(A[I].Key == B[I].Key) << I;
    EXPECT_EQ(A[I].Channel, B[I].Channel) << I;
    EXPECT_EQ(A[I].Obligations, B[I].Obligations) << I;
    EXPECT_EQ(A[I].Failures, B[I].Failures) << I;
    EXPECT_EQ(A[I].Issues, B[I].Issues) << I;
  }
}

} // namespace

TEST(ObligationCacheTest, UnitSequenceRoundTrips) {
  std::vector<engine::ObUnit> Units = sampleUnits();
  std::string Blob = engine::encodeObUnits(Units);
  std::vector<engine::ObUnit> Decoded;
  ASSERT_TRUE(engine::decodeObUnits(Blob.data(), Blob.size(), Decoded));
  expectSameUnits(Units, Decoded);
}

TEST(ObligationCacheTest, TruncatedBlobIsRejectedAtEveryLength) {
  std::vector<engine::ObUnit> Units = sampleUnits();
  std::string Blob = engine::encodeObUnits(Units);
  std::vector<engine::ObUnit> Decoded;
  for (size_t Len = 0; Len < Blob.size(); ++Len)
    EXPECT_FALSE(engine::decodeObUnits(Blob.data(), Len, Decoded))
        << "truncation to " << Len << " bytes must not decode";
}

// --- Disk tier robustness -----------------------------------------------

namespace {

/// A scratch cache directory, removed on destruction.
struct TempCacheDir {
  std::string Path;
  TempCacheDir() {
    char Template[] = "/tmp/isq_obcache_test_XXXXXX";
    Path = ::mkdtemp(Template);
  }
  ~TempCacheDir() {
    for (const char *F : {"/obcache.bin", "/obcache.jrnl"})
      ::unlink((Path + F).c_str());
    ::rmdir(Path.c_str());
  }
  std::string base() const { return Path + "/obcache.bin"; }
  std::string journal() const { return Path + "/obcache.jrnl"; }
};

engine::ObligationCache::Options dirOptions(const TempCacheDir &Dir) {
  engine::ObligationCache::Options Opts;
  Opts.Dir = Dir.Path;
  return Opts;
}

Fingerprint key(uint64_t N) { return Fingerprint{N, ~N}; }

void corruptAt(const std::string &Path, long Offset, size_t Bytes = 16) {
  std::fstream F(Path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(F.good()) << Path;
  F.seekp(Offset);
  for (size_t I = 0; I < Bytes; ++I)
    F.put(static_cast<char>(0xa5 ^ I));
}

long fileSize(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0 ? St.st_size : -1;
}

} // namespace

TEST(ObligationCacheTest, DiskRoundTripServesEveryEntry) {
  TempCacheDir Dir;
  std::vector<engine::ObUnit> Units = sampleUnits();
  {
    engine::ObligationCache Cache(dirOptions(Dir));
    for (uint64_t I = 1; I <= 10; ++I)
      Cache.insert(key(I), Units);
    std::string Error;
    ASSERT_TRUE(Cache.save(Error)) << Error;
  }
  engine::ObligationCache Reloaded(dirOptions(Dir));
  EXPECT_EQ(Reloaded.counters().DiskEntries, 10u);
  EXPECT_FALSE(Reloaded.counters().DiskRejected);
  for (uint64_t I = 1; I <= 10; ++I) {
    std::vector<engine::ObUnit> Out;
    bool FromDisk = false;
    ASSERT_TRUE(Reloaded.lookup(key(I), Out, FromDisk)) << I;
    EXPECT_TRUE(FromDisk) << I;
    expectSameUnits(Units, Out);
  }
  EXPECT_EQ(Reloaded.counters().DiskHits, 10u);
}

TEST(ObligationCacheTest, AllHitRunSkipsWriteback) {
  TempCacheDir Dir;
  {
    engine::ObligationCache Cache(dirOptions(Dir));
    Cache.insert(key(1), sampleUnits());
    std::string Error;
    ASSERT_TRUE(Cache.save(Error)) << Error;
  }
  struct stat Before;
  ASSERT_EQ(::stat(Dir.base().c_str(), &Before), 0);
  {
    engine::ObligationCache Cache(dirOptions(Dir));
    std::vector<engine::ObUnit> Out;
    bool FromDisk = false;
    ASSERT_TRUE(Cache.lookup(key(1), Out, FromDisk));
    std::string Error;
    ASSERT_TRUE(Cache.save(Error)) << Error;
  }
  struct stat After;
  ASSERT_EQ(::stat(Dir.base().c_str(), &After), 0);
  EXPECT_EQ(Before.st_mtime, After.st_mtime)
      << "an all-hit run must not rewrite the image";
  EXPECT_EQ(fileSize(Dir.journal()), -1)
      << "an all-hit run must not create a journal";
}

TEST(ObligationCacheTest, SmallInsertAppendsJournalInsteadOfRewriting) {
  TempCacheDir Dir;
  {
    engine::ObligationCache Cache(dirOptions(Dir));
    for (uint64_t I = 1; I <= 200; ++I)
      Cache.insert(key(I), sampleUnits());
    std::string Error;
    ASSERT_TRUE(Cache.save(Error)) << Error;
  }
  long BaseSize = fileSize(Dir.base());
  {
    engine::ObligationCache Cache(dirOptions(Dir));
    Cache.insert(key(1000), sampleUnits());
    std::string Error;
    ASSERT_TRUE(Cache.save(Error)) << Error;
  }
  EXPECT_EQ(fileSize(Dir.base()), BaseSize)
      << "a small insert must append, not rewrite the base";
  ASSERT_GT(fileSize(Dir.journal()), 0);
  engine::ObligationCache Reloaded(dirOptions(Dir));
  EXPECT_EQ(Reloaded.counters().DiskEntries, 201u);
  std::vector<engine::ObUnit> Out;
  bool FromDisk = false;
  EXPECT_TRUE(Reloaded.lookup(key(1000), Out, FromDisk));
  EXPECT_TRUE(Reloaded.lookup(key(7), Out, FromDisk));
}

TEST(ObligationCacheTest, CorruptedHeaderRejectsImageAndSelfHeals) {
  TempCacheDir Dir;
  {
    engine::ObligationCache Cache(dirOptions(Dir));
    Cache.insert(key(1), sampleUnits());
    std::string Error;
    ASSERT_TRUE(Cache.save(Error)) << Error;
  }
  corruptAt(Dir.base(), 0); // magic
  {
    engine::ObligationCache Cache(dirOptions(Dir));
    EXPECT_TRUE(Cache.counters().DiskRejected);
    EXPECT_EQ(Cache.counters().DiskEntries, 0u);
    std::vector<engine::ObUnit> Out;
    bool FromDisk = false;
    EXPECT_FALSE(Cache.lookup(key(1), Out, FromDisk));
    // The run proceeds cold and save() rewrites a clean image.
    Cache.insert(key(1), sampleUnits());
    std::string Error;
    ASSERT_TRUE(Cache.save(Error)) << Error;
  }
  engine::ObligationCache Healed(dirOptions(Dir));
  EXPECT_FALSE(Healed.counters().DiskRejected);
  EXPECT_EQ(Healed.counters().DiskEntries, 1u);
}

TEST(ObligationCacheTest, TruncatedImageIsRejected) {
  TempCacheDir Dir;
  {
    engine::ObligationCache Cache(dirOptions(Dir));
    for (uint64_t I = 1; I <= 5; ++I)
      Cache.insert(key(I), sampleUnits());
    std::string Error;
    ASSERT_TRUE(Cache.save(Error)) << Error;
  }
  ASSERT_EQ(::truncate(Dir.base().c_str(), 60), 0);
  engine::ObligationCache Cache(dirOptions(Dir));
  EXPECT_TRUE(Cache.counters().DiskRejected);
  std::vector<engine::ObUnit> Out;
  bool FromDisk = false;
  EXPECT_FALSE(Cache.lookup(key(1), Out, FromDisk));
}

TEST(ObligationCacheTest, InteriorCorruptionFailsChecksumNotVerdict) {
  // Corrupt payload bytes while sparing the record framing: the image
  // still loads, but the damaged entry must fail its checksum and come
  // back a miss — never decode into plausible garbage.
  TempCacheDir Dir;
  {
    engine::ObligationCache Cache(dirOptions(Dir));
    for (uint64_t I = 1; I <= 20; ++I)
      Cache.insert(key(I), sampleUnits());
    std::string Error;
    ASSERT_TRUE(Cache.save(Error)) << Error;
  }
  long Size = fileSize(Dir.base());
  corruptAt(Dir.base(), Size / 2, 4); // inside some record's blob
  engine::ObligationCache Cache(dirOptions(Dir));
  EXPECT_FALSE(Cache.counters().DiskRejected);
  EXPECT_EQ(Cache.counters().DiskEntries, 20u);
  size_t Hits = 0, Misses = 0;
  for (uint64_t I = 1; I <= 20; ++I) {
    std::vector<engine::ObUnit> Out;
    bool FromDisk = false;
    if (Cache.lookup(key(I), Out, FromDisk)) {
      expectSameUnits(sampleUnits(), Out); // a hit is never garbage
      ++Hits;
    } else {
      ++Misses;
    }
  }
  EXPECT_GE(Misses, 1u) << "the damaged record must miss";
  EXPECT_GE(Hits, 15u) << "undamaged records must still serve";
}

TEST(ObligationCacheTest, TornJournalTailCostsOnlyTheTail) {
  TempCacheDir Dir;
  {
    engine::ObligationCache Cache(dirOptions(Dir));
    Cache.insert(key(1), sampleUnits());
    std::string Error;
    ASSERT_TRUE(Cache.save(Error)) << Error; // base
  }
  {
    engine::ObligationCache Cache(dirOptions(Dir));
    for (uint64_t I = 2; I <= 4; ++I)
      Cache.insert(key(I), sampleUnits());
    std::string Error;
    ASSERT_TRUE(Cache.save(Error)) << Error; // journal append
  }
  // Tear the journal mid-way: truncation is a crash mid-append.
  long JSize = fileSize(Dir.journal());
  ASSERT_GT(JSize, 0);
  ASSERT_EQ(::truncate(Dir.journal().c_str(), JSize - 10), 0);
  engine::ObligationCache Cache(dirOptions(Dir));
  EXPECT_FALSE(Cache.counters().DiskRejected);
  std::vector<engine::ObUnit> Out;
  bool FromDisk = false;
  EXPECT_TRUE(Cache.lookup(key(1), Out, FromDisk)) << "base entry survives";
  // Journal append order is unordered across keys, so the clipped record
  // can be any one of the three; exactly the torn tail must miss.
  size_t JournalHits = 0;
  for (uint64_t I = 2; I <= 4; ++I)
    if (Cache.lookup(key(I), Out, FromDisk)) {
      expectSameUnits(sampleUnits(), Out);
      ++JournalHits;
    }
  EXPECT_EQ(JournalHits, 2u)
      << "whole records before the tear survive; the torn tail misses";
}
