//===- tests/TestPrograms.h - Tiny programs shared by tests ------*- C++ -*-===//
///
/// \file
/// Small hand-built programs used across the unit tests: an increment
/// fan-out, a conditional failure, and the Fig. 2 M/X/Y/A/B program.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_TESTS_TESTPROGRAMS_H
#define ISQ_TESTS_TESTPROGRAMS_H

#include "semantics/Program.h"

namespace isq {
namespace testing {

inline Value iv(int64_t N) { return Value::integer(N); }

/// Store {x = X}.
inline Store xStore(int64_t X) {
  return Store::make({{Symbol::get("x"), iv(X)}});
}

/// A deterministic action updating x := f(x) and creating no PAs.
inline Action updateX(const std::string &Name,
                      int64_t (*F)(int64_t)) {
  return Action(Name, 0, Action::alwaysEnabled(),
                [F](const Store &G, const std::vector<Value> &) {
                  int64_t X = G.get("x").getInt();
                  return std::vector<Transition>{
                      Transition(G.set("x", iv(F(X))))};
                });
}

/// Main spawns \p N Inc() tasks; each increments x. All interleavings end
/// with x = x0 + N.
inline Program makeIncrementProgram(int64_t N) {
  Program P;
  P.addAction(Action("Main", 0, Action::alwaysEnabled(),
                     [N](const Store &G, const std::vector<Value> &) {
                       Transition T(G);
                       for (int64_t I = 0; I < N; ++I)
                         T.Created.emplace_back("Inc",
                                                std::vector<Value>{});
                       return std::vector<Transition>{std::move(T)};
                     }));
  P.addAction(updateX("Inc", [](int64_t X) { return X + 1; }));
  return P;
}

/// Main spawns Check(); Check's gate requires x == 0, so the program fails
/// iff started with x != 0.
inline Program makeConditionalFailProgram() {
  Program P;
  P.addAction(Action("Main", 0, Action::alwaysEnabled(),
                     [](const Store &G, const std::vector<Value> &) {
                       Transition T(G);
                       T.Created.emplace_back("Check",
                                              std::vector<Value>{});
                       return std::vector<Transition>{std::move(T)};
                     }));
  P.addAction(Action("Check", 0,
                     [](const GateContext &Ctx) {
                       return Ctx.Global.get("x").getInt() == 0;
                     },
                     [](const Store &G, const std::vector<Value> &) {
                       return std::vector<Transition>{Transition(G)};
                     }));
  return P;
}

/// A blocked action: Recv's transition relation is empty unless x > 0.
inline Program makeBlockingProgram() {
  Program P;
  P.addAction(Action("Main", 0, Action::alwaysEnabled(),
                     [](const Store &G, const std::vector<Value> &) {
                       Transition T(G);
                       T.Created.emplace_back("Recv",
                                              std::vector<Value>{});
                       return std::vector<Transition>{std::move(T)};
                     }));
  P.addAction(Action("Recv", 0, Action::alwaysEnabled(),
                     [](const Store &G, const std::vector<Value> &) {
                       std::vector<Transition> Out;
                       if (G.get("x").getInt() > 0)
                         Out.emplace_back(G.set("x", iv(0)));
                       return Out;
                     }));
  return P;
}

} // namespace testing
} // namespace isq

#endif // ISQ_TESTS_TESTPROGRAMS_H
