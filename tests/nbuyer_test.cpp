//===- tests/nbuyer_test.cpp - N-Buyer protocol tests -----------------------------===//

#include "explorer/Explorer.h"
#include "is/ISCheck.h"
#include "is/Sequentialize.h"
#include "protocols/NBuyer.h"
#include "refine/Refinement.h"

#include <gtest/gtest.h>

using namespace isq;
using namespace isq::protocols;

namespace {

InitialCondition init(const NBuyerParams &Params) {
  return {makeNBuyerInitialStore(Params), {}};
}

/// Runs all four IS stages; returns the fully sequentialized program.
Program runAllStages(const NBuyerParams &Params, bool &AllAccepted) {
  Program Current = makeNBuyerProgram(Params);
  AllAccepted = true;
  for (size_t Stage = 0; Stage < kNBuyerStages; ++Stage) {
    ISApplication App = makeNBuyerStageIS(Params, Stage, Current);
    ISCheckReport Report = checkIS(App, {init(Params)});
    EXPECT_TRUE(Report.ok()) << "stage " << Stage << ":\n" << Report.str();
    AllAccepted = AllAccepted && Report.ok();
    Current = applyIS(App);
  }
  return Current;
}

} // namespace

TEST(NBuyerTest, ProtocolTerminatesAndSatisfiesSpec) {
  NBuyerParams Params{3, 2, {0, 1}};
  Program P = makeNBuyerProgram(Params);
  ExploreResult R =
      explore(P, initialConfiguration(makeNBuyerInitialStore(Params)));
  EXPECT_FALSE(R.FailureReachable);
  EXPECT_TRUE(R.Deadlocks.empty());
  ASSERT_FALSE(R.TerminalStores.empty());
  for (const Store &Final : R.TerminalStores)
    EXPECT_TRUE(checkNBuyerSpec(Final, Params));
}

TEST(NBuyerTest, BothOrderOutcomesAreReachable) {
  // With choices {0,1} and price 2, some runs place an order (sum >= 2)
  // and some do not (sum < 2).
  NBuyerParams Params{3, 2, {0, 1}};
  Program P = makeNBuyerProgram(Params);
  ExploreResult R =
      explore(P, initialConfiguration(makeNBuyerInitialStore(Params)));
  bool Placed = false, NotPlaced = false;
  for (const Store &Final : R.TerminalStores) {
    if (Final.get("order").isSome())
      Placed = true;
    else
      NotPlaced = true;
  }
  EXPECT_TRUE(Placed);
  EXPECT_TRUE(NotPlaced);
}

TEST(NBuyerTest, FourStageIteratedProofIsAccepted) {
  NBuyerParams Params{3, 2, {0, 1}};
  bool AllAccepted = false;
  Program Final = runAllStages(Params, AllAccepted);
  ASSERT_TRUE(AllAccepted);

  // The fully sequentialized program preserves all outcomes.
  ExploreResult R = explore(
      Final, initialConfiguration(makeNBuyerInitialStore(Params)));
  ASSERT_FALSE(R.TerminalStores.empty());
  for (const Store &FinalStore : R.TerminalStores)
    EXPECT_TRUE(checkNBuyerSpec(FinalStore, Params));
  EXPECT_TRUE(checkProgramRefinement(makeNBuyerProgram(Params), Final,
                                     {init(Params)})
                  .ok());
}

TEST(NBuyerTest, SequentializationPreservesEveryTerminalStore) {
  NBuyerParams Params{2, 1, {0, 1}};
  bool AllAccepted = false;
  Program Final = runAllStages(Params, AllAccepted);
  ASSERT_TRUE(AllAccepted);
  auto [GoodP, TransP] =
      summarize(makeNBuyerProgram(Params), makeNBuyerInitialStore(Params));
  auto [GoodS, TransS] = summarize(Final, makeNBuyerInitialStore(Params));
  EXPECT_TRUE(GoodP);
  EXPECT_TRUE(GoodS);
  // Same set of outcomes in both directions (IS guarantees ⊆; equality
  // holds here because the sequentialization loses no nondeterminism).
  EXPECT_EQ(TransP.size(), TransS.size());
}

TEST(NBuyerTest, ExactCoverPlacesOrder) {
  NBuyerParams Params{2, 2, {1}};
  Program P = makeNBuyerProgram(Params);
  ExploreResult R =
      explore(P, initialConfiguration(makeNBuyerInitialStore(Params)));
  ASSERT_EQ(R.TerminalStores.size(), 1u);
  const Value &Order = R.TerminalStores[0].get("order");
  ASSERT_TRUE(Order.isSome());
  EXPECT_EQ(Order.getSome().getInt(), 2);
}

TEST(NBuyerTest, OneShotProofIsAccepted) {
  NBuyerParams Params{2, 1, {0, 1}};
  ISApplication App = makeNBuyerOneShotIS(Params);
  ISCheckReport Report = checkIS(App, {init(Params)});
  EXPECT_TRUE(Report.ok()) << Report.str();
  EXPECT_TRUE(
      checkProgramRefinement(App.P, applyIS(App), {init(Params)}).ok());
}

TEST(NBuyerTest, MissingPlaceAbstractionRejected) {
  // In the one-shot proof, Place genuinely co-pends with the Contributes
  // and blocks until all report: dropping its abstraction violates the
  // non-blocking half of (LM).
  NBuyerParams Params{2, 1, {0, 1}};
  ISApplication App = makeNBuyerOneShotIS(Params);
  App.Abstractions.clear();
  ISCheckReport Report = checkIS(App, {init(Params)});
  EXPECT_FALSE(Report.ok());
  EXPECT_FALSE(Report.LeftMovers.ok()) << Report.str();
}

TEST(NBuyerTest, StagedProofNeedsNoBlockingAbstractions) {
  // §5.3's point about iterated IS: each fused Main pre-feeds the next
  // phase's receive, so the staged proof goes through even without the
  // gate-strengthening abstractions.
  NBuyerParams Params{2, 1, {0, 1}};
  Program Current = makeNBuyerProgram(Params);
  for (size_t Stage = 0; Stage < kNBuyerStages; ++Stage) {
    ISApplication App = makeNBuyerStageIS(Params, Stage, Current);
    App.Abstractions.clear();
    ISCheckReport Report = checkIS(App, {init(Params)});
    EXPECT_TRUE(Report.ok()) << "stage " << Stage << ":\n" << Report.str();
    Current = applyIS(App);
  }
}
