//===- tests/lexer_test.cpp - ASL lexer tests --------------------------------------===//

#include "lang/Lexer.h"

#include <gtest/gtest.h>

using namespace isq::asl;

namespace {
std::vector<Token> lexOk(const std::string &Source) {
  std::vector<Diagnostic> Diags;
  std::vector<Token> Tokens = lex(Source, Diags);
  EXPECT_TRUE(Diags.empty()) << (Diags.empty() ? "" : Diags[0].str());
  return Tokens;
}
} // namespace

TEST(LexerTest, EmptyInputYieldsEof) {
  auto Tokens = lexOk("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_TRUE(Tokens[0].is(TokenKind::Eof));
}

TEST(LexerTest, KeywordsAndIdentifiers) {
  auto Tokens = lexOk("action foo var choose chooser");
  ASSERT_EQ(Tokens.size(), 6u);
  EXPECT_TRUE(Tokens[0].is(TokenKind::KwAction));
  EXPECT_TRUE(Tokens[1].is(TokenKind::Identifier));
  EXPECT_EQ(Tokens[1].Text, "foo");
  EXPECT_TRUE(Tokens[2].is(TokenKind::KwVar));
  EXPECT_TRUE(Tokens[3].is(TokenKind::KwChoose));
  EXPECT_TRUE(Tokens[4].is(TokenKind::Identifier))
      << "keyword prefix does not hijack an identifier";
}

TEST(LexerTest, IntegerLiterals) {
  auto Tokens = lexOk("0 42 1234567");
  EXPECT_EQ(Tokens[0].IntValue, 0);
  EXPECT_EQ(Tokens[1].IntValue, 42);
  EXPECT_EQ(Tokens[2].IntValue, 1234567);
}

TEST(LexerTest, TwoCharOperators) {
  auto Tokens = lexOk(":= .. == != <= >= && ||");
  TokenKind Expected[] = {TokenKind::Assign,    TokenKind::DotDot,
                          TokenKind::EqEq,      TokenKind::BangEq,
                          TokenKind::LessEq,    TokenKind::GreaterEq,
                          TokenKind::AmpAmp,    TokenKind::PipePipe};
  for (size_t I = 0; I < 8; ++I)
    EXPECT_TRUE(Tokens[I].is(Expected[I])) << I;
}

TEST(LexerTest, SingleCharOperators) {
  auto Tokens = lexOk("< > ! : + - * / % ( ) { } [ ] , ;");
  TokenKind Expected[] = {
      TokenKind::Less,     TokenKind::Greater,  TokenKind::Bang,
      TokenKind::Colon,    TokenKind::Plus,     TokenKind::Minus,
      TokenKind::Star,     TokenKind::Slash,    TokenKind::Percent,
      TokenKind::LParen,   TokenKind::RParen,   TokenKind::LBrace,
      TokenKind::RBrace,   TokenKind::LBracket, TokenKind::RBracket,
      TokenKind::Comma,    TokenKind::Semicolon};
  for (size_t I = 0; I < 17; ++I)
    EXPECT_TRUE(Tokens[I].is(Expected[I])) << I;
}

TEST(LexerTest, LineCommentsAreSkipped) {
  auto Tokens = lexOk("a // comment with var action := tokens\nb");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
}

TEST(LexerTest, LocationsAreTracked) {
  auto Tokens = lexOk("a\n  b");
  EXPECT_EQ(Tokens[0].Line, 1u);
  EXPECT_EQ(Tokens[0].Column, 1u);
  EXPECT_EQ(Tokens[1].Line, 2u);
  EXPECT_EQ(Tokens[1].Column, 3u);
}

TEST(LexerTest, UnknownCharacterIsDiagnosed) {
  std::vector<Diagnostic> Diags;
  lex("a @ b", Diags);
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_NE(Diags[0].Message.find("unexpected character"),
            std::string::npos);
  EXPECT_EQ(Diags[0].Column, 3u);
}

TEST(LexerTest, FullActionSnippet) {
  auto Tokens = lexOk("action Collect(i: int) {\n"
                      "  await size(CH[i]) >= n;\n"
                      "}\n");
  // Spot-check the shape.
  EXPECT_TRUE(Tokens[0].is(TokenKind::KwAction));
  EXPECT_TRUE(Tokens[1].is(TokenKind::Identifier));
  EXPECT_TRUE(Tokens[2].is(TokenKind::LParen));
  bool HasAwait = false, HasGreaterEq = false;
  for (const Token &T : Tokens) {
    HasAwait = HasAwait || T.is(TokenKind::KwAwait);
    HasGreaterEq = HasGreaterEq || T.is(TokenKind::GreaterEq);
  }
  EXPECT_TRUE(HasAwait);
  EXPECT_TRUE(HasGreaterEq);
}
