//===- tests/scheduler_test.cpp - Obligation scheduler tests ---------------------===//
//
// Unit tests for the ObligationScheduler (ordered reconciliation,
// speculative dedup, channels, caps) plus the determinism contract of the
// scheduled checkers: verdicts, obligation counts, diagnostics, and
// reconciliation statistics are bit-identical for any thread count, and
// equal to the serial reference loops.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "engine/ObligationScheduler.h"
#include "is/ISCheck.h"
#include "movers/MoverCheck.h"
#include "protocols/Broadcast.h"
#include "protocols/Pathological.h"
#include "protocols/PingPong.h"
#include "protocols/ProducerConsumer.h"
#include "refine/Refinement.h"

#include <gtest/gtest.h>

using namespace isq;
using namespace isq::engine;
using namespace isq::testing;

namespace {

/// The scheduler draws its worker budget from the unified EngineConfig.
EngineConfig threadConfig(unsigned Threads) {
  EngineConfig Config;
  Config.NumThreads = Threads;
  return Config;
}

void expectSameResult(const CheckResult &A, const CheckResult &B,
                      const std::string &What) {
  EXPECT_EQ(A.ok(), B.ok()) << What;
  EXPECT_EQ(A.obligations(), B.obligations()) << What;
  EXPECT_EQ(A.failures(), B.failures()) << What;
  ASSERT_EQ(A.issues().size(), B.issues().size()) << What;
  for (size_t I = 0; I < A.issues().size(); ++I)
    EXPECT_EQ(A.issues()[I], B.issues()[I]) << What << " issue " << I;
}

void expectSameReport(const ISCheckReport &A, const ISCheckReport &B) {
  expectSameResult(A.SideConditions, B.SideConditions, "side conditions");
  expectSameResult(A.AbstractionRefinement, B.AbstractionRefinement,
                   "abstraction refinement");
  expectSameResult(A.BaseCase, B.BaseCase, "(I1)");
  expectSameResult(A.Conclusion, B.Conclusion, "(I2)");
  expectSameResult(A.InductiveStep, B.InductiveStep, "(I3)");
  expectSameResult(A.LeftMovers, B.LeftMovers, "(LM)");
  expectSameResult(A.Cooperation, B.Cooperation, "(CO)");
  EXPECT_EQ(A.ok(), B.ok());
}

/// Everything in the stats except timings must be thread-count invariant.
void expectSameCounters(const ObligationStats &A, const ObligationStats &B) {
  for (size_t I = 0; I < NumObConditions; ++I) {
    EXPECT_EQ(A.PerCondition[I].Jobs, B.PerCondition[I].Jobs) << I;
    EXPECT_EQ(A.PerCondition[I].Units, B.PerCondition[I].Units) << I;
    EXPECT_EQ(A.PerCondition[I].UnitsDeduped, B.PerCondition[I].UnitsDeduped)
        << I;
    EXPECT_EQ(A.PerCondition[I].Obligations, B.PerCondition[I].Obligations)
        << I;
    EXPECT_EQ(A.PerCondition[I].Failures, B.PerCondition[I].Failures) << I;
  }
}

/// The serial report against the scheduled report for 1, 2 and 8 worker
/// threads — the PR's core acceptance property.
void expectParallelMatchesSerial(const ISApplication &App,
                                 const ISUniverse &Universe) {
  ISCheckReport Serial = checkIS(App, Universe);
  ISCheckReport Reports[3];
  const unsigned Threads[3] = {1, 2, 8};
  for (size_t I = 0; I < 3; ++I) {
    ISCheckOptions Opts;
    Opts.Config.NumThreads = Threads[I];
    Reports[I] = checkIS(App, Universe, Opts);
    expectSameReport(Serial, Reports[I]);
  }
  expectSameCounters(Reports[0].Scheduler, Reports[1].Scheduler);
  expectSameCounters(Reports[0].Scheduler, Reports[2].Scheduler);
  // The serial oracle behind --no-parallel-check is reachable through the
  // same options surface.
  ISCheckOptions SerialOpts;
  SerialOpts.Config.ParallelCheck = false;
  expectSameReport(Serial, checkIS(App, Universe, SerialOpts));
}

} // namespace

// --- Scheduler core -----------------------------------------------------

TEST(ObligationSchedulerTest, MergesUnitsInSubmissionOrder) {
  ObligationScheduler Sched(threadConfig(1));
  auto *G = Sched.group(ObCondition::LeftMovers);
  Sched.add(G, [](ObSink &S) {
    S.begin();
    S.countObligation();
    S.fail("first");
  });
  Sched.add(G, [](ObSink &S) {
    S.begin();
    S.countObligation();
    S.countObligation();
    S.fail("second");
  });
  Sched.run();
  const CheckResult &R = Sched.result(G);
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.obligations(), 3u);
  EXPECT_EQ(R.failures(), 2u);
  ASSERT_EQ(R.issues().size(), 2u);
  EXPECT_EQ(R.issues()[0], "first");
  EXPECT_EQ(R.issues()[1], "second");
}

TEST(ObligationSchedulerTest, DedupKeepsFirstSubmittedUnit) {
  // Both jobs claim the same key with different payloads; regardless of
  // which worker runs first, reconciliation must keep the unit of the
  // earlier-submitted job.
  for (unsigned Threads : {1u, 2u, 8u}) {
    ObligationScheduler Sched(threadConfig(Threads));
    auto *G = Sched.group(ObCondition::Cooperation);
    Sched.add(G, [](ObSink &S) {
      S.begin(ObKey{7, 1, 2, 3});
      S.countObligation();
      S.fail("winner");
    });
    Sched.add(G, [](ObSink &S) {
      S.begin(ObKey{7, 1, 2, 3});
      S.countObligation();
      S.countObligation();
      S.fail("loser");
    });
    Sched.run();
    const CheckResult &R = Sched.result(G);
    EXPECT_EQ(R.obligations(), 1u) << Threads;
    EXPECT_EQ(R.failures(), 1u) << Threads;
    ASSERT_EQ(R.issues().size(), 1u) << Threads;
    EXPECT_EQ(R.issues()[0], "winner") << Threads;
    EXPECT_EQ(Sched.stats()
                  .PerCondition[size_t(ObCondition::Cooperation)]
                  .UnitsDeduped,
              1u);
  }
}

TEST(ObligationSchedulerTest, KeylessUnitsNeverDedup) {
  ObligationScheduler Sched(threadConfig(2));
  auto *G = Sched.group(ObCondition::BaseCase);
  for (int I = 0; I < 4; ++I)
    Sched.add(G, [](ObSink &S) {
      S.begin(); // keyless
      S.countObligation();
    });
  Sched.run();
  EXPECT_EQ(Sched.result(G).obligations(), 4u);
  EXPECT_EQ(
      Sched.stats().PerCondition[size_t(ObCondition::BaseCase)].UnitsDeduped,
      0u);
}

TEST(ObligationSchedulerTest, ChannelsFoldIntoSeparateResults) {
  ObligationScheduler Sched(threadConfig(1));
  auto *G = Sched.group(
      {ObCondition::InductiveStep, ObCondition::SideConditions});
  Sched.add(G, [](ObSink &S) {
    S.begin(ObKey(), 1); // side-condition channel
    S.countObligation();
    S.fail("bad choice");
    S.begin(ObKey(), 0); // inductive-step channel
    S.countObligation();
  });
  Sched.run();
  EXPECT_TRUE(Sched.result(G, 0).ok());
  EXPECT_EQ(Sched.result(G, 0).obligations(), 1u);
  EXPECT_FALSE(Sched.result(G, 1).ok());
  ASSERT_EQ(Sched.result(G, 1).issues().size(), 1u);
  EXPECT_EQ(Sched.result(G, 1).issues()[0], "bad choice");
}

TEST(ObligationSchedulerTest, FailureCountsSurviveIssueCap) {
  ObligationScheduler Sched(threadConfig(1));
  auto *G = Sched.group(ObCondition::Conclusion);
  Sched.add(G, [](ObSink &S) {
    S.begin();
    for (int I = 0; I < 12; ++I) {
      S.countObligation();
      S.fail("issue " + std::to_string(I));
    }
  });
  Sched.run();
  const CheckResult &R = Sched.result(G);
  EXPECT_EQ(R.obligations(), 12u);
  EXPECT_EQ(R.failures(), 12u);
  EXPECT_EQ(R.issues().size(), CheckResult::MaxIssues);
  EXPECT_EQ(R.issues()[0], "issue 0");
}

TEST(ObligationSchedulerTest, IdenticalAcrossThreadCountsUnderContention) {
  // Many jobs racing on overlapping keys: results and counter statistics
  // must not depend on the worker count.
  auto Run = [](unsigned Threads) {
    ObligationScheduler Sched(threadConfig(Threads));
    auto *G = Sched.group(ObCondition::LeftMovers);
    for (uint32_t J = 0; J < 64; ++J)
      Sched.add(G, [J](ObSink &S) {
        for (uint32_t K = 0; K < 16; ++K) {
          S.begin(ObKey{1, (J + K) % 8, 0, 0});
          S.countObligation();
          if ((J + K) % 8 == 3)
            S.fail("key3 from job " + std::to_string(J));
        }
      });
    Sched.run();
    CheckResult R = Sched.result(G);
    ObligationStats Stats = Sched.stats();
    return std::make_pair(R, Stats);
  };
  auto [R1, S1] = Run(1);
  auto [R2, S2] = Run(2);
  auto [R8, S8] = Run(8);
  expectSameResult(R1, R2, "threads 1 vs 2");
  expectSameResult(R1, R8, "threads 1 vs 8");
  expectSameCounters(S1, S2);
  expectSameCounters(S1, S8);
}

// --- Scheduled refinement vs serial ------------------------------------

TEST(ScheduledRefinementTest, MatchesSerialIncludingFailures) {
  // A1: gate x >= 0, x := x + 1.  A2: gate always, x := x + 2.
  // Gate inclusion fails at x < 0; simulation fails everywhere else —
  // both obligation kinds, with dedup exercised by duplicate contexts.
  Action A1("A1", 0,
            [](const GateContext &Ctx) {
              return Ctx.Global.get("x").getInt() >= 0;
            },
            [](const Store &G, const std::vector<Value> &) {
              return std::vector<Transition>{
                  Transition(G.set("x", iv(G.get("x").getInt() + 1)))};
            });
  Action A2("A2", 0, Action::alwaysEnabled(),
            [](const Store &G, const std::vector<Value> &) {
              return std::vector<Transition>{
                  Transition(G.set("x", iv(G.get("x").getInt() + 2)))};
            });

  InternedContextUniverse Universe;
  Universe.Arena = std::make_shared<StateArena>();
  Symbol Carrier = Symbol::get("<test-args>");
  for (int64_t X : {-1, 0, 1, 2, 0, 1, -1, 2}) { // duplicates on purpose
    Universe.Items.push_back(
        {Universe.Arena->internStore(xStore(X)),
         Universe.Arena->internPa(PendingAsync(Carrier, {})),
         Universe.Arena->internPaSet(PaMultiset())});
  }

  CheckResult Serial = checkActionRefinement(A1, A2, Universe);
  ASSERT_FALSE(Serial.ok());
  for (unsigned Threads : {1u, 2u, 8u}) {
    ObligationScheduler Sched(threadConfig(Threads));
    InternedTransitionCache Cache(*Universe.Arena);
    GateCache Gates(*Universe.Arena);
    OmegaGateCache OmegaGates(*Universe.Arena);
    auto *G = scheduleActionRefinement(Sched, ObCondition::BaseCase, A1, A2,
                                       Universe, Cache, Gates, OmegaGates);
    Sched.run();
    expectSameResult(Serial, Sched.result(G),
                     "threads " + std::to_string(Threads));
  }
}

// --- Scheduled movers vs serial -----------------------------------------

TEST(ScheduledMoverTest, MatchesSerialOnBroadcastUniverse) {
  protocols::BroadcastParams Params;
  Params.NumNodes = 3;
  ISApplication App = protocols::makeBroadcastIS(Params);
  ISUniverse Universe = ISUniverse::build(
      App, {{protocols::makeBroadcastInitialStore(Params), {}}});
  for (Symbol A : App.E) {
    const Action &Abs = App.abstraction(A);
    CheckResult SerialL = checkLeftMover(A, Abs, App.P, Universe.Space);
    CheckResult SerialR = checkRightMover(A, Abs, App.P, Universe.Space);
    for (unsigned Threads : {1u, 2u, 8u}) {
      ObligationScheduler Sched(threadConfig(Threads));
      InternedTransitionCache Cache(*Universe.Space.Arena);
      GateCache Gates(*Universe.Space.Arena);
      OmegaGateCache OmegaGates(*Universe.Space.Arena);
      SuccessorOmegaCache SuccOmega(*Universe.Space.Arena);
      auto *GL =
          scheduleLeftMover(Sched, ObCondition::LeftMovers, A, Abs, App.P,
                            Universe.Space, Cache, Gates, OmegaGates,
                            SuccOmega);
      auto *GR =
          scheduleRightMover(Sched, ObCondition::CrossCheck, A, Abs, App.P,
                             Universe.Space, Cache, Gates, OmegaGates,
                             SuccOmega);
      Sched.run();
      expectSameResult(SerialL, Sched.result(GL),
                       A.str() + " left, threads " + std::to_string(Threads));
      expectSameResult(SerialR, Sched.result(GR),
                       A.str() + " right, threads " + std::to_string(Threads));
    }
  }
}

// --- Scheduled checkIS vs serial, accepting and rejecting ----------------

TEST(ScheduledISCheckTest, MatchesSerialOnBroadcast) {
  protocols::BroadcastParams Params;
  Params.NumNodes = 3;
  ISApplication App = protocols::makeBroadcastIS(Params);
  ISUniverse Universe = ISUniverse::build(
      App, {{protocols::makeBroadcastInitialStore(Params), {}}});
  expectParallelMatchesSerial(App, Universe);
}

TEST(ScheduledISCheckTest, MatchesSerialOnPingPong) {
  protocols::PingPongParams Params;
  Params.NumRounds = 3;
  ISApplication App = protocols::makePingPongIS(Params);
  ISUniverse Universe = ISUniverse::build(
      App, {{protocols::makePingPongInitialStore(Params), {}}});
  expectParallelMatchesSerial(App, Universe);
}

TEST(ScheduledISCheckTest, MatchesSerialOnProducerConsumer) {
  protocols::ProducerConsumerParams Params;
  ISApplication App = protocols::makeProducerConsumerIS(Params);
  ISUniverse Universe = ISUniverse::build(
      App, {{protocols::makeProducerConsumerInitialStore(Params), {}}});
  expectParallelMatchesSerial(App, Universe);
}

TEST(ScheduledISCheckTest, MatchesSerialOnCooperationCounterexample) {
  // All conditions except (CO) hold: a rejecting run must produce the
  // same failure counts and the same first counterexample text.
  ISApplication App = protocols::makeCooperationCounterexampleIS();
  ISUniverse Universe = ISUniverse::build(
      App, {{protocols::makeCooperationCounterexampleStore(), {}}});
  ISCheckReport Serial = checkIS(App, Universe);
  ASSERT_FALSE(Serial.Cooperation.ok());
  expectParallelMatchesSerial(App, Universe);
}

TEST(ScheduledISCheckTest, MatchesSerialOnNonInductiveInvariant) {
  // An invariant missing the intermediate prefixes fails (I3); the
  // scheduled checker must report identical step failures and identical
  // choice-function side-condition accounting (the two-channel group).
  int64_t N = 3;
  ISApplication App;
  App.P = makeIncrementProgram(N);
  App.M = Program::mainSymbol();
  App.E = {Symbol::get("Inc")};
  App.Invariant = Action(
      "BadInv", 0, Action::alwaysEnabled(),
      [N](const Store &G, const std::vector<Value> &) {
        std::vector<Transition> Out;
        int64_t X = G.get("x").getInt();
        for (int64_t K : {int64_t(0), N}) {
          Transition T(G.set("x", iv(X + K)));
          for (int64_t I = K; I < N; ++I)
            T.Created.emplace_back("Inc", std::vector<Value>{});
          Out.push_back(std::move(T));
        }
        return Out;
      });
  App.Choice = ISApplication::chooseInOrder({Symbol::get("Inc")});
  App.WfMeasure = Measure::pendingAsyncCount();
  ISUniverse Universe = ISUniverse::build(App, {{xStore(0), {}}});
  ISCheckReport Serial = checkIS(App, Universe);
  ASSERT_FALSE(Serial.InductiveStep.ok());
  expectParallelMatchesSerial(App, Universe);
}
