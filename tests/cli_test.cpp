//===- tests/cli_test.cpp - CLI parsing and verdict report tests -------------------===//
///
/// \file
/// Unit tests for the isq-verify command-line surface and the versioned
/// verdict API: std::from_chars argument validation, exit-code semantics,
/// driver-input diagnostics, JSON/text rendering, and the golden
/// schema-versioned JSON reports (set ISQ_UPDATE_GOLDEN=1 to regenerate).
///
//===----------------------------------------------------------------------===//

#include "driver/CliOptions.h"
#include "driver/ReportRender.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <regex>
#include <sstream>

using namespace isq;
using namespace isq::driver;

namespace {

CliParse parse(std::initializer_list<const char *> Args) {
  return parseCommandLine(std::vector<std::string>(Args.begin(), Args.end()));
}

void expectError(std::initializer_list<const char *> Args,
                 const std::string &Substring) {
  CliParse P = parse(Args);
  EXPECT_FALSE(P.Ok);
  EXPECT_NE(P.Error.find(Substring), std::string::npos)
      << "error was: " << P.Error;
}

std::string readExampleAsl(const std::string &Name) {
  std::ifstream In(std::string(ISQ_SOURCE_DIR) + "/examples/asl/" + Name);
  EXPECT_TRUE(In.good()) << "missing example file " << Name;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

/// Zeroes every timing field so the JSON compares reproducibly; all other
/// fields are deterministic at --threads 1.
std::string scrubTimings(const std::string &Json) {
  static const std::regex Seconds("(\"[a-z_]*seconds\":)[0-9.]+");
  return std::regex_replace(Json, Seconds, "$010");
}

/// Compares \p Rendered (scrubbed) against tests/golden/\p Name, or
/// rewrites the golden file when ISQ_UPDATE_GOLDEN is set.
void expectMatchesGolden(const std::string &Rendered,
                         const std::string &Name) {
  std::string Path = std::string(ISQ_SOURCE_DIR) + "/tests/golden/" + Name;
  std::string Scrubbed = scrubTimings(Rendered);
  if (std::getenv("ISQ_UPDATE_GOLDEN")) {
    std::ofstream Out(Path);
    Out << Scrubbed;
    return;
  }
  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << "missing golden file " << Path
                         << " (regenerate with ISQ_UPDATE_GOLDEN=1)";
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  EXPECT_EQ(Scrubbed, Buffer.str()) << "golden mismatch for " << Name;
}

/// Runs the driver over tests/asl_errors/\p Name exactly as isq-verify
/// would: the source path is set so imports resolve relative to the
/// corpus directory and diagnostics carry real file names.
VerifyResult verifyErrorCorpus(const std::string &Name) {
  std::string Dir = std::string(ISQ_SOURCE_DIR) + "/tests/asl_errors/";
  std::ifstream In(Dir + Name);
  EXPECT_TRUE(In.good()) << "missing error-corpus file " << Name;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  VerifyOptions Options;
  Options.Source = Buffer.str();
  Options.SourcePath = Dir + Name;
  Options.Eliminate = {"Main"}; // never reached: every corpus file fails
  return verifyModule(Options);
}

/// Strips the machine-dependent corpus directory from \p Text so the
/// golden files show bare file names ("type_errors.asl:8:8: ...").
std::string stripCorpusDir(std::string Text) {
  const std::string Dir =
      std::string(ISQ_SOURCE_DIR) + "/tests/asl_errors/";
  size_t Pos;
  while ((Pos = Text.find(Dir)) != std::string::npos)
    Text.erase(Pos, Dir.size());
  return Text;
}

/// Every compile diagnostic must be location-bearing: a 1-based line and
/// column plus a resolved file name.
void expectLocated(const VerifyResult &Result) {
  EXPECT_FALSE(Result.CompileOk);
  EXPECT_EQ(Result.exitCode(), 2);
  ASSERT_FALSE(Result.Diags.empty());
  for (const asl::Diagnostic &D : Result.Diags) {
    EXPECT_GT(D.Line, 0u) << D.Message;
    EXPECT_GT(D.Column, 0u) << D.Message;
    EXPECT_FALSE(D.FileName.empty()) << D.Message;
  }
}

} // namespace

// --- Argument parsing ----------------------------------------------------

TEST(CliTest, ParsesFullCommandLine) {
  CliParse P = parse({"paxos.asl", "--const", "R=2", "--const", "N=3",
                      "--arg-major", "--eliminate", "StartRound,Join",
                      "--abstract", "Join=JoinAbs", "--weight",
                      "StartRound=9", "--rewrite", "Main", "--threads", "4",
                      "--no-cross-check", "--no-parallel-check", "--format",
                      "json"});
  ASSERT_TRUE(P.Ok) << P.Error;
  const CliOptions &O = P.Options;
  EXPECT_EQ(O.InputPath, "paxos.asl");
  EXPECT_EQ(O.Format, OutputFormat::Json);
  EXPECT_FALSE(O.ShowHelp);
  EXPECT_EQ(O.Verify.Consts.at("R"), 2);
  EXPECT_EQ(O.Verify.Consts.at("N"), 3);
  EXPECT_EQ(O.Verify.Order, VerifyOptions::RankOrder::ArgMajor);
  ASSERT_EQ(O.Verify.Eliminate.size(), 2u);
  EXPECT_EQ(O.Verify.Eliminate[0], "StartRound");
  EXPECT_EQ(O.Verify.Eliminate[1], "Join");
  EXPECT_EQ(O.Verify.Abstractions.at("Join"), "JoinAbs");
  EXPECT_EQ(O.Verify.Weights.at("StartRound"), 9u);
  EXPECT_EQ(O.Verify.RewriteAction, "Main");
  EXPECT_EQ(O.Verify.Engine.NumThreads, 4u);
  EXPECT_FALSE(O.Verify.CrossCheck);
  EXPECT_FALSE(O.Verify.Engine.ParallelCheck);
}

TEST(CliTest, DefaultsAreTextSerialExplorationParallelCheck) {
  CliParse P = parse({"x.asl", "--eliminate", "A"});
  ASSERT_TRUE(P.Ok);
  EXPECT_EQ(P.Options.Format, OutputFormat::Text);
  EXPECT_EQ(P.Options.Verify.Engine.NumThreads, 1u);
  EXPECT_TRUE(P.Options.Verify.Engine.ParallelCheck);
  EXPECT_TRUE(P.Options.Verify.Engine.WorkStealing);
  EXPECT_EQ(P.Options.Verify.Engine.StealChunk, 64u);
  EXPECT_EQ(P.Options.Verify.Engine.Shards, 16u);
  EXPECT_FALSE(P.Options.Verify.Engine.Compress);
  EXPECT_TRUE(P.Options.Verify.CrossCheck);
}

// --- The unified --engine flag -------------------------------------------

TEST(CliTest, EngineFlagParsesEveryKey) {
  CliParse P = parse({"x.asl", "--eliminate", "A", "--engine",
                      "threads=8,work-stealing=off,steal-chunk=128",
                      "--engine", "shards=4,compress=on,symmetry=false",
                      "--engine", "parallel-check=0"});
  ASSERT_TRUE(P.Ok) << P.Error;
  const engine::EngineConfig &E = P.Options.Verify.Engine;
  EXPECT_EQ(E.NumThreads, 8u);
  EXPECT_FALSE(E.WorkStealing);
  EXPECT_EQ(E.StealChunk, 128u);
  EXPECT_EQ(E.Shards, 4u);
  EXPECT_TRUE(E.Compress);
  EXPECT_FALSE(E.Symmetry);
  EXPECT_FALSE(E.ParallelCheck);
}

TEST(CliTest, EngineFlagRejectsMalformedSpecs) {
  expectError({"x.asl", "--engine"}, "--engine needs a KEY=VALUE");
  expectError({"x.asl", "--engine", "frobnicate=1"},
              "unknown engine option 'frobnicate'");
  expectError({"x.asl", "--engine", "threads"}, "KEY=VALUE");
  expectError({"x.asl", "--engine", "threads=0"}, "positive integer");
  expectError({"x.asl", "--engine", "steal-chunk=-3"}, "positive integer");
  expectError({"x.asl", "--engine", "shards=3"}, "power of two");
  expectError({"x.asl", "--engine", "shards=32"}, "power of two");
  expectError({"x.asl", "--engine", "compress=maybe"}, "expects a boolean");
  expectError({"x.asl", "--engine", "threads=2,,shards=4"},
              "empty item in engine option list");
}

TEST(CliTest, EngineSpillKnobsParse) {
  CliParse P = parse({"x.asl", "--eliminate", "A", "--engine",
                      "compress=true,spill=true,spill-dir=/tmp/s,"
                      "mem-budget=64M"});
  ASSERT_TRUE(P.Ok) << P.Error;
  const engine::EngineConfig &E = P.Options.Verify.Engine;
  EXPECT_TRUE(E.Spill);
  EXPECT_EQ(E.SpillDir, "/tmp/s");
  EXPECT_EQ(E.MemBudget, 64ull << 20);
}

TEST(CliTest, EngineSpillConflictsAreDiagnosed) {
  // Each incoherent knob combination has a targeted diagnostic; none is
  // silently ignored or "fixed up".
  expectError({"x.asl", "--eliminate", "A", "--engine", "spill-dir=/tmp/s"},
              "'spill-dir' has no effect without");
  expectError({"x.asl", "--eliminate", "A", "--engine", "mem-budget=64M"},
              "'mem-budget' has no effect without");
  expectError({"x.asl", "--eliminate", "A", "--engine",
               "spill=true,spill-dir=/tmp/s,mem-budget=64M"},
              "requires 'compress=true'");
  expectError({"x.asl", "--eliminate", "A", "--engine",
               "compress=true,spill=true,mem-budget=64M"},
              "requires 'spill-dir=PATH'");
  expectError({"x.asl", "--eliminate", "A", "--engine",
               "compress=true,spill=true,spill-dir=/tmp/s"},
              "requires 'mem-budget=BYTES'");
  expectError({"x.asl", "--eliminate", "A", "--engine",
               "compress=true,spill=true,spill-dir=/tmp/s,mem-budget=64M,"
               "cache-dir=/tmp/s"},
              "must name different directories");
  expectError({"x.asl", "--engine", "mem-budget=0"}, "positive byte count");
  expectError({"x.asl", "--engine", "mem-budget=64Q"}, "positive byte count");
}

TEST(CliTest, DeprecatedAliasesStillSetTheEngineConfig) {
  CliParse P = parse({"x.asl", "--eliminate", "A", "--threads", "6",
                      "--no-parallel-check", "--no-symmetry",
                      "--no-work-stealing"});
  ASSERT_TRUE(P.Ok) << P.Error;
  const engine::EngineConfig &E = P.Options.Verify.Engine;
  EXPECT_EQ(E.NumThreads, 6u);
  EXPECT_FALSE(E.ParallelCheck);
  EXPECT_FALSE(E.Symmetry);
  EXPECT_FALSE(E.WorkStealing);
  // The aliases are documented as deprecated spellings of --engine.
  std::string Usage = usageText();
  EXPECT_NE(Usage.find("--engine K=V"), std::string::npos);
  EXPECT_NE(Usage.find("--threads N           deprecated alias"),
            std::string::npos);
  EXPECT_NE(Usage.find("--no-parallel-check   deprecated alias"),
            std::string::npos);
  EXPECT_NE(Usage.find("--no-symmetry         deprecated alias"),
            std::string::npos);
  EXPECT_NE(Usage.find("--no-work-stealing    deprecated alias"),
            std::string::npos);
}

TEST(CliTest, EngineFlagComposesWithAliases) {
  // Later flags win over earlier ones regardless of spelling.
  CliParse P = parse({"x.asl", "--eliminate", "A", "--threads", "2",
                      "--engine", "threads=4"});
  ASSERT_TRUE(P.Ok) << P.Error;
  EXPECT_EQ(P.Options.Verify.Engine.NumThreads, 4u);

  CliParse Q = parse({"x.asl", "--eliminate", "A", "--engine",
                      "work-stealing=false", "--engine",
                      "work-stealing=true"});
  ASSERT_TRUE(Q.Ok) << Q.Error;
  EXPECT_TRUE(Q.Options.Verify.Engine.WorkStealing);
}

TEST(CliTest, ListFlagsRejectEmptyItems) {
  expectError({"x.asl", "--eliminate", "A,,B"}, "empty item in list");
  expectError({"x.asl", "--eliminate", ",A"}, "empty item in list");
  expectError({"x.asl", "--eliminate", "A,"}, "empty item in list");
}

TEST(CliTest, HelpShortCircuits) {
  for (const char *Flag : {"--help", "-h"}) {
    CliParse P = parse({Flag});
    EXPECT_TRUE(P.Ok);
    EXPECT_TRUE(P.Options.ShowHelp);
  }
  std::string Usage = usageText();
  // The documented exit codes are part of the API surface.
  EXPECT_NE(Usage.find("0  proof accepted"), std::string::npos);
  EXPECT_NE(Usage.find("1  proof rejected"), std::string::npos);
  EXPECT_NE(Usage.find("2  usage, compilation, or input error"),
            std::string::npos);
}

TEST(CliTest, RejectsMalformedNumbers) {
  // std::from_chars semantics: no silent zeroes, no trailing junk.
  expectError({"x.asl", "--const", "n=abc"}, "expects an integer");
  expectError({"x.asl", "--const", "n=3x"}, "expects an integer");
  expectError({"x.asl", "--const", "n="}, "NAME=VALUE");
  expectError({"x.asl", "--const", "=3"}, "NAME=VALUE");
  expectError({"x.asl", "--weight", "A=-1"}, "non-negative integer");
  expectError({"x.asl", "--weight", "A=1.5"}, "non-negative integer");
  expectError({"x.asl", "--threads", "0"}, "positive integer");
  expectError({"x.asl", "--threads", "two"}, "positive integer");
  expectError({"x.asl", "--threads", "99999999999999999999"},
              "positive integer");
}

TEST(CliTest, RejectsUsageErrors) {
  expectError({"x.asl", "--format", "xml"}, "expects 'text' or 'json'");
  expectError({"x.asl", "--format"}, "--format needs a value");
  expectError({"x.asl", "--eliminate"}, "--eliminate needs a value");
  expectError({"x.asl", "--wibble"}, "unknown option");
  expectError({"x.asl", "y.asl"}, "multiple input files");
  expectError({"--eliminate", "A"}, "no input file given");
  expectError({}, "no input file given");
}

// --- Exit codes and input validation -------------------------------------

TEST(CliTest, ExitCodeSemantics) {
  VerifyResult R;
  EXPECT_EQ(R.exitCode(), 2); // compile failed
  R.CompileOk = true;
  EXPECT_EQ(R.exitCode(), 2); // input invalid
  R.InputOk = true;
  EXPECT_EQ(R.exitCode(), 1); // proof rejected
  R.Accepted = true;
  EXPECT_EQ(R.exitCode(), 0); // proof accepted
}

TEST(CliTest, InputValidationCollectsEveryDiagnostic) {
  VerifyOptions Options;
  Options.Source = "action Main() { skip; }\naction A() { skip; }";
  Options.Eliminate = {"A", "A", "Nope"};
  Options.Abstractions = {{"Main", "Ghost"}};
  Options.Weights = {{"Missing", 2}};
  VerifyResult Result = verifyModule(Options);
  EXPECT_TRUE(Result.CompileOk);
  EXPECT_FALSE(Result.InputOk);
  EXPECT_EQ(Result.exitCode(), 2);
  auto Has = [&](const std::string &S) {
    for (const asl::Diagnostic &D : Result.Diags)
      if (D.Message.find(S) != std::string::npos)
        return true;
    return false;
  };
  EXPECT_TRUE(Has("eliminated action 'A' listed more than once"));
  EXPECT_TRUE(Has("eliminated action 'Nope' is not declared"));
  EXPECT_TRUE(Has("abstraction given for 'Main', which is not eliminated"));
  EXPECT_TRUE(Has("abstraction action 'Ghost' is not declared"));
  EXPECT_TRUE(Has("weight given for 'Missing', which is not declared"));
  // Text rendering surfaces them all as error lines.
  EXPECT_NE(Result.Summary.find("error: eliminated action 'A'"),
            std::string::npos);
}

TEST(CliTest, EmptyEliminationIsInputError) {
  VerifyOptions Options;
  Options.Source = "action Main() { skip; }";
  VerifyResult Result = verifyModule(Options);
  EXPECT_TRUE(Result.CompileOk);
  EXPECT_FALSE(Result.InputOk);
  EXPECT_NE(Result.Summary.find("no eliminated actions given"),
            std::string::npos);
}

TEST(CliTest, AbstractionArityMismatchDiagnosed) {
  VerifyOptions Options;
  Options.Source =
      "action Main() { async A(1); }\n"
      "action A(i: int) { skip; }\n"
      "action AbsWrong() { skip; }";
  Options.Eliminate = {"A"};
  Options.Abstractions = {{"A", "AbsWrong"}};
  VerifyResult Result = verifyModule(Options);
  EXPECT_TRUE(Result.CompileOk);
  EXPECT_FALSE(Result.InputOk);
  EXPECT_NE(Result.Summary.find("different arity"), std::string::npos);
}

// --- Renderers ------------------------------------------------------------

TEST(CliTest, JsonWriterEscapesAndNests) {
  json::JsonWriter W;
  W.beginObject();
  W.key("s").value(std::string("a\"b\\c\n\x01"));
  W.key("xs").beginArray().value(1).value(false).null().endArray();
  W.key("o").beginObject().key("d").value(0.5).endObject();
  W.endObject();
  EXPECT_EQ(W.take(), "{\"s\":\"a\\\"b\\\\c\\n\\u0001\","
                      "\"xs\":[1,false,null],"
                      "\"o\":{\"d\":0.500000}}");
}

TEST(CliTest, TextReportIsPureFunctionOfResult) {
  VerifyOptions Options;
  Options.Source = readExampleAsl("broadcast.asl");
  Options.Consts = {{"n", 2}};
  Options.Eliminate = {"Broadcast", "Collect"};
  Options.Abstractions = {{"Collect", "CollectAbs"}};
  VerifyResult Result = verifyModule(Options);
  ASSERT_TRUE(Result.Accepted) << Result.Summary;
  EXPECT_EQ(Result.Summary, renderText(Result));
  EXPECT_NE(Result.Summary.find("checker:"), std::string::npos);
  // The serial oracle renders without the scheduler line.
  Options.Engine.ParallelCheck = false;
  VerifyResult Serial = verifyModule(Options);
  EXPECT_TRUE(Serial.Accepted);
  EXPECT_EQ(Serial.Summary.find("checker:"), std::string::npos);
}

TEST(CliTest, GoldenJsonAccepted) {
  VerifyOptions Options;
  Options.Source = readExampleAsl("broadcast.asl");
  Options.Consts = {{"n", 2}};
  Options.Eliminate = {"Broadcast", "Collect"};
  Options.Abstractions = {{"Collect", "CollectAbs"}};
  VerifyResult Result = verifyModule(Options);
  ASSERT_TRUE(Result.Accepted) << Result.Summary;
  EXPECT_EQ(Result.exitCode(), 0);
  expectMatchesGolden(renderJson(Result), "broadcast_accepted.json");
}

TEST(CliTest, GoldenJsonRejected) {
  // Without the Fig. 1-④ abstraction, Collect is not a left mover: the
  // rejecting report carries the (LM) failure diagnostics.
  VerifyOptions Options;
  Options.Source = readExampleAsl("broadcast.asl");
  Options.Consts = {{"n", 2}};
  Options.Eliminate = {"Broadcast", "Collect"};
  VerifyResult Result = verifyModule(Options);
  EXPECT_FALSE(Result.Accepted);
  EXPECT_EQ(Result.exitCode(), 1);
  expectMatchesGolden(renderJson(Result), "broadcast_rejected.json");
}

TEST(CliTest, GoldenJsonInputError) {
  VerifyOptions Options;
  Options.Source = "action Main() { skip; }";
  Options.Eliminate = {"Main", "Main"};
  VerifyResult Result = verifyModule(Options);
  EXPECT_EQ(Result.exitCode(), 2);
  expectMatchesGolden(renderJson(Result), "input_error.json");
}

// --- Golden diagnostics (tests/asl_errors corpus) -------------------------
//
// Each corpus file is compiled through the full driver; the rendered
// text (file:line:col: severity: message) is pinned as a golden file, so
// message wording, location precision, and multi-error behavior are all
// part of the tested surface. The GoldenDiag* names ride the
// CliTest.Golden* filter used by tools/update_goldens.sh.

TEST(CliTest, GoldenDiagParseBad) {
  VerifyResult Result = verifyErrorCorpus("parse_bad.asl");
  expectLocated(Result);
  expectMatchesGolden(stripCorpusDir(renderText(Result)),
                      "diag_parse_bad.txt");
}

TEST(CliTest, GoldenDiagTypeErrors) {
  VerifyResult Result = verifyErrorCorpus("type_errors.asl");
  expectLocated(Result);
  // No first-error bailout: one run reports every mismatch.
  EXPECT_GE(Result.Diags.size(), 3u);
  expectMatchesGolden(stripCorpusDir(renderText(Result)),
                      "diag_type_errors.txt");
}

TEST(CliTest, GoldenDiagBindErrors) {
  VerifyResult Result = verifyErrorCorpus("bind_errors.asl");
  expectLocated(Result);
  expectMatchesGolden(stripCorpusDir(renderText(Result)),
                      "diag_bind_errors.txt");
}

TEST(CliTest, GoldenDiagUndefinedNames) {
  VerifyResult Result = verifyErrorCorpus("undefined_names.asl");
  expectLocated(Result);
  EXPECT_GE(Result.Diags.size(), 3u);
  expectMatchesGolden(stripCorpusDir(renderText(Result)),
                      "diag_undefined_names.txt");
}

TEST(CliTest, GoldenDiagImportMissing) {
  VerifyResult Result = verifyErrorCorpus("import_missing.asl");
  expectLocated(Result);
  expectMatchesGolden(stripCorpusDir(renderText(Result)),
                      "diag_import_missing.txt");
}

TEST(CliTest, GoldenDiagImportCycle) {
  VerifyResult Result = verifyErrorCorpus("import_cycle_a.asl");
  expectLocated(Result);
  expectMatchesGolden(stripCorpusDir(renderText(Result)),
                      "diag_import_cycle.txt");
}

TEST(CliTest, GoldenDiagJson) {
  // The JSON shape of located diagnostics is part of schema version 3:
  // severity, file, line/col, end span, and note per entry.
  VerifyResult Result = verifyErrorCorpus("type_errors.asl");
  expectLocated(Result);
  expectMatchesGolden(stripCorpusDir(renderJson(Result)),
                      "diag_type_errors.json");
}
