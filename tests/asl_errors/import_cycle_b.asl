// Error corpus: the other half of the a -> b -> a import cycle.
import "import_cycle_a.asl";

var shared: int := 0;
