// Error corpus: an import whose target does not exist on disk. The
// diagnostic points at the import declaration in this file.
import "no_such_module.asl";

action Main() {
  skip;
}
