// Error corpus: references to names that are never declared — a variable
// read, an assignment target, and an async to an unknown action. All are
// reported in one run, each with the precise use site.
var x: int := 0;

action Main() {
  x := y + 1;
  z := 2;
  async Nope(3);
}
