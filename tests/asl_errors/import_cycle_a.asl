// Error corpus: one half of an import cycle (a -> b -> a). Cycles are a
// diagnosed error, not a stack overflow.
import "import_cycle_b.asl";

action Main() {
  skip;
}
