// Error corpus: a missing semicolon after the initializer and an action
// body that is never closed. Exercises parser recovery and the golden
// text rendering of syntax diagnostics (file:line:col).
var x: int := 0

action Main() {
  x := 1;
