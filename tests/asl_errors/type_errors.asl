// Error corpus: type mismatches inside one action. Every diagnostic must
// carry the precise source span of the offending expression, and all of
// them are reported in one run (no first-error bailout).
var x: int := 0;
var q: seq<int> := [];

action Main() {
  x := true;
  x := front(x);
  q := push_back(q, false);
}
