// Error corpus: a duplicate global declaration. The binder reports it
// with a "first declared here" note, and the pipeline stops before the
// type checker so the duplicate is not double-reported.
var x: int := 0;
var x: int := 1;

action Main() {
  x := 2;
}
