//===- tests/property_test.cpp - Cross-protocol property sweeps --------------------===//
///
/// \file
/// Parameterized property tests exercising the paper's guarantees across
/// protocols and instance sizes:
///
///  P1. Acceptance: every protocol's IS application is accepted.
///  P2. Soundness (Theorem 4.4, empirical): P ≼ P' holds on the instance.
///  P3. Completeness of the reduction here: P' loses no outcome —
///      Trans(P) = Trans(P') for our protocols (the sequentialization
///      keeps all nondeterminism that matters).
///  P4. Rewriter totality: every terminating execution rewrites to a
///      P'-execution with the same final configuration.
///  P5. Cooperation: the measure strictly decreases along every non-Main
///      step of sampled executions.
///
//===----------------------------------------------------------------------===//

#include "explorer/Explorer.h"
#include "is/ISCheck.h"
#include "is/Rewriter.h"
#include "is/Sequentialize.h"
#include "protocols/Broadcast.h"
#include "protocols/ChangRoberts.h"
#include "protocols/NBuyer.h"
#include "protocols/PingPong.h"
#include "protocols/ProducerConsumer.h"
#include "protocols/TwoPhaseCommit.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

using namespace isq;
using namespace isq::protocols;

namespace {

/// A protocol instance under test: its program, initial store, one-shot
/// IS application, and spec.
struct Instance {
  std::string Name;
  ISApplication App;
  Store Init;
  std::function<bool(const Store &)> Spec;
  /// Measures are only required to decrease on eliminated actions; the
  /// rewriter property is checked when execution enumeration is feasible.
  bool CheckRewriter = true;
};

Instance broadcastInstance(int64_t N) {
  BroadcastParams Params{N, {}};
  return {"broadcast/" + std::to_string(N), makeBroadcastIS(Params),
          makeBroadcastInitialStore(Params),
          [Params](const Store &S) { return checkBroadcastSpec(S, Params); },
          N <= 3};
}

Instance pingPongInstance(int64_t T) {
  PingPongParams Params{T};
  return {"pingpong/" + std::to_string(T), makePingPongIS(Params),
          makePingPongInitialStore(Params),
          [Params](const Store &S) { return checkPingPongSpec(S, Params); },
          true};
}

Instance producerConsumerInstance(int64_t T) {
  ProducerConsumerParams Params{T};
  return {"prodcons/" + std::to_string(T),
          makeProducerConsumerIS(Params),
          makeProducerConsumerInitialStore(Params),
          [Params](const Store &S) {
            return checkProducerConsumerSpec(S, Params);
          },
          true};
}

Instance changRobertsInstance(int64_t N, std::vector<int64_t> Ids) {
  ChangRobertsParams Params{N, std::move(Ids)};
  return {"changroberts/" + std::to_string(N),
          makeChangRobertsOneShotIS(Params),
          makeChangRobertsInitialStore(Params),
          [Params](const Store &S) {
            return checkChangRobertsSpec(S, Params);
          },
          N <= 3};
}

Instance twoPhaseCommitInstance(int64_t N) {
  TwoPhaseCommitParams Params{N};
  return {"2pc/" + std::to_string(N), makeTwoPhaseCommitOneShotIS(Params),
          makeTwoPhaseCommitInitialStore(Params),
          [Params](const Store &S) {
            return checkTwoPhaseCommitSpec(S, Params);
          },
          N <= 2};
}

Instance nBuyerInstance(int64_t N) {
  NBuyerParams Params{N, N - 1, {0, 1}};
  return {"nbuyer/" + std::to_string(N), makeNBuyerOneShotIS(Params),
          makeNBuyerInitialStore(Params),
          [Params](const Store &S) { return checkNBuyerSpec(S, Params); },
          N <= 2};
}

std::vector<Instance> allInstances() {
  std::vector<Instance> Out;
  for (int64_t N : {2, 3, 4})
    Out.push_back(broadcastInstance(N));
  for (int64_t T : {1, 2, 3, 4})
    Out.push_back(pingPongInstance(T));
  for (int64_t T : {1, 2, 3, 4})
    Out.push_back(producerConsumerInstance(T));
  Out.push_back(changRobertsInstance(2, {1, 2}));
  Out.push_back(changRobertsInstance(3, {2, 3, 1}));
  Out.push_back(changRobertsInstance(4, {3, 1, 4, 2}));
  for (int64_t N : {1, 2, 3})
    Out.push_back(twoPhaseCommitInstance(N));
  for (int64_t N : {2, 3})
    Out.push_back(nBuyerInstance(N));
  return Out;
}

class ProtocolProperty : public ::testing::TestWithParam<size_t> {
protected:
  static const Instance &instance() {
    static const std::vector<Instance> Instances = allInstances();
    return Instances[GetParam()];
  }
};

std::string instanceName(const ::testing::TestParamInfo<size_t> &Info) {
  static const std::vector<Instance> Instances = allInstances();
  std::string Name = Instances[Info.param].Name;
  std::replace(Name.begin(), Name.end(), '/', '_');
  return Name;
}

} // namespace

TEST_P(ProtocolProperty, P1_ISApplicationAccepted) {
  const Instance &I = instance();
  ISCheckReport Report = checkIS(I.App, {{I.Init, {}}});
  EXPECT_TRUE(Report.ok()) << I.Name << ":\n" << Report.str();
}

TEST_P(ProtocolProperty, P2_ProgramRefinementHolds) {
  const Instance &I = instance();
  EXPECT_TRUE(
      checkProgramRefinement(I.App.P, applyIS(I.App), {{I.Init, {}}}).ok())
      << I.Name;
}

TEST_P(ProtocolProperty, P3_SequentializationLosesNoOutcome) {
  const Instance &I = instance();
  auto [GoodP, TransP] = summarize(I.App.P, I.Init);
  auto [GoodS, TransS] = summarize(applyIS(I.App), I.Init);
  EXPECT_TRUE(GoodP) << I.Name;
  EXPECT_TRUE(GoodS) << I.Name;
  std::unordered_set<Store> SeqOutcomes(TransS.begin(), TransS.end());
  std::unordered_set<Store> ConcOutcomes(TransP.begin(), TransP.end());
  EXPECT_EQ(SeqOutcomes, ConcOutcomes) << I.Name;
}

TEST_P(ProtocolProperty, P3b_EveryOutcomeSatisfiesSpec) {
  const Instance &I = instance();
  auto [Good, Trans] = summarize(applyIS(I.App), I.Init);
  EXPECT_TRUE(Good) << I.Name;
  ASSERT_FALSE(Trans.empty()) << I.Name;
  for (const Store &Final : Trans)
    EXPECT_TRUE(I.Spec(Final)) << I.Name << ": " << Final.str();
}

TEST_P(ProtocolProperty, P4_RewriterPreservesFinalConfigurations) {
  const Instance &I = instance();
  if (!I.CheckRewriter)
    GTEST_SKIP() << "execution enumeration too large for " << I.Name;
  auto Execs =
      enumerateExecutions(I.App.P, initialConfiguration(I.Init), 400, 200);
  ASSERT_FALSE(Execs.empty()) << I.Name;
  for (const Execution &Pi : Execs) {
    if (!Pi.isTerminating())
      continue;
    RewriteResult R = rewriteExecution(I.App, Pi);
    ASSERT_TRUE(R.Ok) << I.Name << ": " << R.Error << "\nschedule: "
                      << Pi.scheduleStr();
    EXPECT_EQ(R.Rewritten.finalConfiguration(), Pi.finalConfiguration())
        << I.Name;
  }
}

TEST_P(ProtocolProperty, P5_MeasureDecreasesOnEliminatedActions) {
  const Instance &I = instance();
  Rng R(0xfeedULL + GetParam());
  for (int Sample = 0; Sample < 20; ++Sample) {
    auto E = sampleExecution(I.App.P, initialConfiguration(I.Init), R, 500);
    if (!E)
      continue;
    Configuration Prev = E->Initial;
    for (const ExecStep &Step : E->Steps) {
      if (I.App.eliminates(Step.Executed.Action) &&
          !Step.Successor.isFailure()) {
        // CO guarantees SOME measure-decreasing transition exists; for
        // these protocols every transition of an eliminated action
        // decreases, which we check on the sampled path.
        EXPECT_TRUE(I.App.WfMeasure.decreases(Prev, Step.Successor))
            << I.Name << " step " << Step.Executed.str();
      }
      Prev = Step.Successor;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolProperty,
                         ::testing::Range<size_t>(0, allInstances().size()),
                         instanceName);
