//===- tests/serve_test.cpp - Verification-service tests -----------------------------===//
///
/// \file
/// Tests for the isq-serve subsystem: Marshall/Unmarshall round-trips,
/// malformed-frame rejection (truncated frames, oversized length
/// prefixes, wrong version bytes, garbage payloads — clean errors, never
/// crashes or hangs), verdict-cache key derivation and LRU behavior,
/// job-queue admission control and round-robin fairness, and an
/// end-to-end in-process daemon exercised over real sockets.
///
//===----------------------------------------------------------------------===//

#include "driver/ReportRender.h"
#include "serve/Client.h"
#include "serve/JobQueue.h"
#include "serve/Server.h"
#include "serve/VerdictCache.h"
#include "serve/Wire.h"

#include <gtest/gtest.h>

#include <fstream>
#include <mutex>
#include <regex>
#include <sstream>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

using namespace isq;
using namespace isq::serve;

namespace {

std::string readExampleAsl(const std::string &Name) {
  std::ifstream In(std::string(ISQ_SOURCE_DIR) + "/examples/asl/" + Name);
  EXPECT_TRUE(In.good()) << "missing example file " << Name;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

/// The ping-pong module at T=2: the fastest shipped proof, used where a
/// test needs a real verification job.
driver::VerifyOptions pingPongOptions() {
  driver::VerifyOptions O;
  O.Source = readExampleAsl("ping_pong.asl");
  O.Consts["T"] = 2;
  O.Eliminate = {"Ping", "Pong"};
  O.Abstractions = {{"Ping", "PingAbs"}, {"Pong", "PongAbs"}};
  O.Order = driver::VerifyOptions::RankOrder::ArgMajor;
  return O;
}

std::string scrubTimings(const std::string &Json) {
  static const std::regex Seconds("(\"[a-z_]*seconds\":)[0-9.]+");
  return std::regex_replace(Json, Seconds, "$010");
}

} // namespace

// --- Marshall / Unmarshall ----------------------------------------------

TEST(ServeWireTest, PrimitiveRoundTrip) {
  Marshall M;
  M << static_cast<uint8_t>(0xab) << static_cast<uint32_t>(0xdeadbeef)
    << static_cast<uint64_t>(0x0123456789abcdefULL)
    << static_cast<int64_t>(-42) << true << 3.25 << std::string("hello");
  Unmarshall U(M.take());
  uint8_t A;
  uint32_t B;
  uint64_t C;
  int64_t D;
  bool E;
  double F;
  std::string G;
  U >> A >> B >> C >> D >> E >> F >> G;
  EXPECT_TRUE(U.ok());
  EXPECT_TRUE(U.atEnd());
  EXPECT_EQ(A, 0xab);
  EXPECT_EQ(B, 0xdeadbeefu);
  EXPECT_EQ(C, 0x0123456789abcdefULL);
  EXPECT_EQ(D, -42);
  EXPECT_TRUE(E);
  EXPECT_EQ(F, 3.25);
  EXPECT_EQ(G, "hello");
}

TEST(ServeWireTest, ContainerRoundTrip) {
  Marshall M;
  std::vector<std::string> V = {"a", "", "long string with spaces"};
  std::map<std::string, int64_t> MKV = {{"n", 3}, {"R", -1}};
  M << V << MKV;
  Unmarshall U(M.take());
  std::vector<std::string> V2;
  std::map<std::string, int64_t> MKV2;
  U >> V2 >> MKV2;
  EXPECT_TRUE(U.ok());
  EXPECT_TRUE(U.atEnd());
  EXPECT_EQ(V, V2);
  EXPECT_EQ(MKV, MKV2);
}

TEST(ServeWireTest, SubmitRequestRoundTrip) {
  SubmitRequest R;
  R.RequestId = 77;
  R.Source = "const n: int;\n";
  R.Consts = {{"n", 3}, {"R", 2}};
  R.RewriteAction = "Main";
  R.Eliminate = {"A", "B"};
  R.ArgMajor = true;
  R.Abstractions = {{"B", "BAbs"}};
  R.Weights = {{"A", 8}};
  R.CrossCheck = false;
  R.Engine = {{"symmetry", "false"}, {"steal-chunk", "32"}};

  Marshall M;
  M << R;
  Unmarshall U(M.take());
  SubmitRequest R2;
  U >> R2;
  EXPECT_TRUE(U.ok());
  EXPECT_TRUE(U.atEnd());
  EXPECT_EQ(R2.RequestId, 77u);
  EXPECT_EQ(R2.Source, R.Source);
  EXPECT_EQ(R2.Consts, R.Consts);
  EXPECT_EQ(R2.Eliminate, R.Eliminate);
  EXPECT_TRUE(R2.ArgMajor);
  EXPECT_EQ(R2.Abstractions, R.Abstractions);
  EXPECT_EQ(R2.Weights, R.Weights);
  EXPECT_FALSE(R2.CrossCheck);
  EXPECT_EQ(R2.Engine, R.Engine);
}

TEST(ServeWireTest, EngineMapValidation) {
  SubmitRequest R;
  std::string Error;
  EXPECT_TRUE(validateEngine(R, Error)) << Error; // empty map: defaults

  R.Engine = {{"symmetry", "false"}, {"compress", "true"}};
  EXPECT_TRUE(validateEngine(R, Error)) << Error;

  R.Engine = {{"frobnicate", "1"}};
  EXPECT_FALSE(validateEngine(R, Error));
  EXPECT_NE(Error.find("unknown engine option"), std::string::npos);

  R.Engine = {{"shards", "3"}};
  EXPECT_FALSE(validateEngine(R, Error));
  EXPECT_NE(Error.find("power of two"), std::string::npos);

  // The thread budget is the server's, never the client's.
  R.Engine = {{"threads", "64"}};
  EXPECT_FALSE(validateEngine(R, Error));
  EXPECT_NE(Error.find("--job-threads"), std::string::npos);
}

TEST(ServeWireTest, EngineConfigSurvivesOptionRoundTrip) {
  driver::VerifyOptions O;
  O.Source = "x";
  O.Engine.Symmetry = false;
  O.Engine.StealChunk = 32;
  O.Engine.NumThreads = 8; // must NOT travel: server knob
  SubmitRequest R = fromVerifyOptions(O);
  EXPECT_EQ(R.Engine.count("threads"), 0u);
  EXPECT_EQ(R.Engine.at("symmetry"), "false");
  EXPECT_EQ(R.Engine.at("steal-chunk"), "32");

  driver::VerifyOptions Back = toVerifyOptions(R, /*NumThreads=*/3);
  EXPECT_FALSE(Back.Engine.Symmetry);
  EXPECT_EQ(Back.Engine.StealChunk, 32u);
  EXPECT_EQ(Back.Engine.NumThreads, 3u) << "server thread budget wins";
}

TEST(ServeWireTest, ResponseRoundTrips) {
  {
    Marshall M;
    M << VerdictResponse{9, 1, true, "{\"accepted\":false}\n"};
    Unmarshall U(M.take());
    VerdictResponse R;
    U >> R;
    EXPECT_TRUE(U.ok() && U.atEnd());
    EXPECT_EQ(R.RequestId, 9u);
    EXPECT_EQ(R.ExitCode, 1);
    EXPECT_TRUE(R.CacheHit);
    EXPECT_EQ(R.ReportJson, "{\"accepted\":false}\n");
  }
  {
    Marshall M;
    M << BusyResponse{5, 64, "queue full"};
    Unmarshall U(M.take());
    BusyResponse R;
    U >> R;
    EXPECT_TRUE(U.ok() && U.atEnd());
    EXPECT_EQ(R.QueueDepth, 64u);
    EXPECT_EQ(R.Message, "queue full");
  }
  {
    ServeStats S;
    S.JobsAccepted = 10;
    S.CacheHits = 3;
    S.TotalJobSeconds = 1.5;
    S.MaxJobSeconds = 0.75;
    Marshall M;
    M << StatsResponse{2, S};
    Unmarshall U(M.take());
    StatsResponse R;
    U >> R;
    EXPECT_TRUE(U.ok() && U.atEnd());
    EXPECT_EQ(R.Stats.JobsAccepted, 10u);
    EXPECT_EQ(R.Stats.CacheHits, 3u);
    EXPECT_EQ(R.Stats.TotalJobSeconds, 1.5);
    EXPECT_EQ(R.Stats.MaxJobSeconds, 0.75);
  }
}

// --- Malformed input: the unmarshaller must fail cleanly -----------------

TEST(ServeWireTest, UnderflowLatchesNotOk) {
  Unmarshall U(std::string("\x01\x02", 2));
  uint64_t V = 99;
  U >> V;
  EXPECT_FALSE(U.ok());
  EXPECT_EQ(V, 0u);
  // Latched: subsequent reads keep failing and yield zero values.
  uint8_t B = 7;
  U >> B;
  EXPECT_FALSE(U.ok());
  EXPECT_EQ(B, 0);
}

TEST(ServeWireTest, GarbageStringLengthRejectedBeforeAllocation) {
  // A string whose length field claims 4 GiB with 3 bytes of payload.
  Marshall M;
  M << static_cast<uint32_t>(0xfffffff0);
  std::string Bytes = M.take() + "abc";
  Unmarshall U(Bytes);
  std::string S;
  U >> S;
  EXPECT_FALSE(U.ok());
  EXPECT_TRUE(S.empty());
}

TEST(ServeWireTest, GarbageContainerCountRejected) {
  Marshall M;
  M << static_cast<uint32_t>(1000000); // count far beyond payload
  Unmarshall U(M.take());
  std::vector<std::string> V;
  U >> V;
  EXPECT_FALSE(U.ok());
  EXPECT_TRUE(V.empty());
}

TEST(ServeWireTest, NonBooleanByteRejected) {
  Unmarshall U(std::string("\x02", 1));
  bool B = false;
  U >> B;
  EXPECT_FALSE(U.ok());
}

TEST(ServeWireTest, TrailingGarbageDetectedByAtEnd) {
  Marshall M;
  M << StatsRequest{4};
  std::string Bytes = M.take() + "junk";
  Unmarshall U(Bytes);
  StatsRequest R;
  U >> R;
  EXPECT_TRUE(U.ok());
  EXPECT_FALSE(U.atEnd());
}

TEST(ServeWireTest, SubmitBodyFromRandomBytesNeverCrashes) {
  // Deterministic xorshift garbage of many sizes: decoding must either
  // succeed (vacuously) or fail cleanly — never crash (run under
  // ASan/UBSan in CI).
  uint64_t State = 0x12345678;
  auto Next = [&State] {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545f4914f6cdd1dULL;
  };
  for (size_t Len = 0; Len < 200; Len += 7) {
    std::string Bytes;
    for (size_t I = 0; I < Len; ++I)
      Bytes.push_back(static_cast<char>(Next() & 0xff));
    Unmarshall U(Bytes);
    SubmitRequest R;
    U >> R;
    // No assertion on ok(): the point is clean, bounded behavior.
  }
}

// --- Frame layer over real fds ------------------------------------------

namespace {

/// A connected socket pair for frame-layer tests.
struct SocketPair {
  int A = -1, B = -1;
  SocketPair() {
    int Fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
    A = Fds[0];
    B = Fds[1];
  }
  ~SocketPair() {
    if (A >= 0)
      ::close(A);
    if (B >= 0)
      ::close(B);
  }
};

void writeRaw(int Fd, const std::string &Bytes) {
  ASSERT_EQ(::write(Fd, Bytes.data(), Bytes.size()),
            static_cast<ssize_t>(Bytes.size()));
}

} // namespace

TEST(ServeFrameTest, RoundTrip) {
  SocketPair S;
  ASSERT_TRUE(writeFrame(S.A, MsgType::StatsRequest, "body"));
  FrameResult F = readFrame(S.B);
  EXPECT_EQ(F.St, FrameResult::Status::Ok);
  EXPECT_EQ(F.Version, WireVersion);
  EXPECT_EQ(F.Type, MsgType::StatsRequest);
  EXPECT_EQ(F.Body, "body");
}

TEST(ServeFrameTest, EofIsClean) {
  SocketPair S;
  ::close(S.A);
  S.A = -1;
  FrameResult F = readFrame(S.B);
  EXPECT_EQ(F.St, FrameResult::Status::Eof);
}

TEST(ServeFrameTest, TruncatedLengthPrefixIsMalformed) {
  SocketPair S;
  writeRaw(S.A, std::string("\x00\x00", 2));
  ::close(S.A);
  S.A = -1;
  FrameResult F = readFrame(S.B);
  EXPECT_EQ(F.St, FrameResult::Status::Malformed);
}

TEST(ServeFrameTest, TruncatedPayloadIsMalformed) {
  SocketPair S;
  // Length prefix promises 100 bytes; deliver 3 and hang up.
  Marshall M;
  M << static_cast<uint32_t>(100);
  writeRaw(S.A, M.take() + "abc");
  ::close(S.A);
  S.A = -1;
  FrameResult F = readFrame(S.B);
  EXPECT_EQ(F.St, FrameResult::Status::Malformed);
  EXPECT_NE(F.Error.find("truncated"), std::string::npos);
}

TEST(ServeFrameTest, OversizedLengthPrefixIsMalformed) {
  SocketPair S;
  Marshall M;
  M << static_cast<uint32_t>(0xffffffff);
  writeRaw(S.A, M.take());
  FrameResult F = readFrame(S.B);
  EXPECT_EQ(F.St, FrameResult::Status::Malformed);
  EXPECT_NE(F.Error.find("length"), std::string::npos);
}

TEST(ServeFrameTest, UndersizedLengthPrefixIsMalformed) {
  SocketPair S;
  // A frame must carry at least version + type.
  Marshall M;
  M << static_cast<uint32_t>(1);
  writeRaw(S.A, M.take() + "x");
  FrameResult F = readFrame(S.B);
  EXPECT_EQ(F.St, FrameResult::Status::Malformed);
}

// --- Verdict cache -------------------------------------------------------

TEST(VerdictCacheTest, KeyIgnoresRequestIdAndBindingOrder) {
  driver::VerifyOptions O = pingPongOptions();
  SubmitRequest A = fromVerifyOptions(O);
  A.RequestId = 1;
  SubmitRequest B = fromVerifyOptions(O);
  B.RequestId = 999;
  EXPECT_EQ(verdictCacheKey(A), verdictCacheKey(B));

  // Maps canonicalize: inserting consts/abstractions/weights in any
  // order yields the same key.
  SubmitRequest C = A;
  C.Consts.clear();
  C.Consts.emplace("z", 1);
  C.Consts.emplace("a", 2);
  SubmitRequest D = A;
  D.Consts.clear();
  D.Consts.emplace("a", 2);
  D.Consts.emplace("z", 1);
  EXPECT_EQ(verdictCacheKey(C), verdictCacheKey(D));
}

TEST(VerdictCacheTest, KeySensitiveWhereSemanticsAre) {
  SubmitRequest Base = fromVerifyOptions(pingPongOptions());
  std::string BaseKey = verdictCacheKey(Base);

  SubmitRequest Reordered = Base;
  std::swap(Reordered.Eliminate[0], Reordered.Eliminate[1]);
  EXPECT_NE(verdictCacheKey(Reordered), BaseKey)
      << "elimination order is semantic";

  SubmitRequest Rank = Base;
  Rank.ArgMajor = !Rank.ArgMajor;
  EXPECT_NE(verdictCacheKey(Rank), BaseKey) << "rank order is semantic";

  SubmitRequest Source = Base;
  Source.Source += " ";
  EXPECT_NE(verdictCacheKey(Source), BaseKey) << "program text is semantic";

  SubmitRequest Flag = Base;
  Flag.Engine["symmetry"] = "false";
  EXPECT_NE(verdictCacheKey(Flag), BaseKey)
      << "engine configuration is part of the job identity";

  SubmitRequest Chunk = Base;
  Chunk.Engine["steal-chunk"] = "8";
  EXPECT_NE(verdictCacheKey(Chunk), BaseKey)
      << "differing engine configs must not share a cache slot";

  SubmitRequest Const = Base;
  Const.Consts["T"] = 3;
  EXPECT_NE(verdictCacheKey(Const), BaseKey) << "const values are semantic";
}

TEST(VerdictCacheTest, LruEvictionAtCapacity) {
  VerdictCache Cache(2);
  VerdictCache::Entry E;
  E.ReportJson = "{}";
  Cache.insert("k1", E);
  Cache.insert("k2", E);
  EXPECT_TRUE(Cache.lookup("k1").has_value()); // k1 now most recent
  Cache.insert("k3", E);                       // evicts k2
  EXPECT_TRUE(Cache.lookup("k1").has_value());
  EXPECT_FALSE(Cache.lookup("k2").has_value());
  EXPECT_TRUE(Cache.lookup("k3").has_value());

  VerdictCache::Counters C = Cache.counters();
  EXPECT_EQ(C.Evictions, 1u);
  EXPECT_EQ(C.Entries, 2u);
  EXPECT_EQ(C.Hits, 3u);
  EXPECT_EQ(C.Misses, 1u);
}

TEST(VerdictCacheTest, ZeroCapacityDisables) {
  VerdictCache Cache(0);
  VerdictCache::Entry E;
  Cache.insert("k", E);
  EXPECT_FALSE(Cache.lookup("k").has_value());
}

TEST(VerdictCacheTest, HitReturnsDeepEqualResult) {
  driver::VerifyOptions O = pingPongOptions();
  driver::VerifyResult Result = driver::verifyModule(O);
  ASSERT_TRUE(Result.Accepted);
  std::string Json = driver::renderJson(Result);

  VerdictCache Cache(4);
  Cache.insert("job", {Result, Json});
  std::optional<VerdictCache::Entry> Hit = Cache.lookup("job");
  ASSERT_TRUE(Hit.has_value());
  // The renderers are pure functions of the verdict struct, so render
  // equality across every field group is deep equality of the verdict.
  EXPECT_EQ(Hit->ReportJson, Json);
  EXPECT_EQ(driver::renderJson(Hit->Result), Json);
  EXPECT_EQ(driver::renderText(Hit->Result), driver::renderText(Result));
  EXPECT_EQ(Hit->Result.exitCode(), Result.exitCode());
  EXPECT_EQ(Hit->Result.Report.totalObligations(),
            Result.Report.totalObligations());
}

// --- Job queue -----------------------------------------------------------

TEST(JobQueueTest, AdmissionControlAtCapacity) {
  JobQueue Q(2);
  EXPECT_TRUE(Q.tryPush({1, [] {}}));
  EXPECT_TRUE(Q.tryPush({1, [] {}}));
  EXPECT_FALSE(Q.tryPush({1, [] {}})) << "full queue must refuse";
  EXPECT_FALSE(Q.tryPush({2, [] {}})) << "capacity is global";
  EXPECT_EQ(Q.depth(), 2u);
  ASSERT_TRUE(Q.pop().has_value());
  EXPECT_TRUE(Q.tryPush({2, [] {}})) << "space reopens after pop";
}

TEST(JobQueueTest, RoundRobinAcrossClients) {
  JobQueue Q(16);
  std::vector<int> Order;
  auto Push = [&](uint64_t Client, int Tag) {
    ASSERT_TRUE(Q.tryPush({Client, [&Order, Tag] { Order.push_back(Tag); }}));
  };
  // Client 1 floods first; clients 2 and 3 arrive later with one job
  // each. Round-robin must interleave them ahead of 1's backlog.
  Push(1, 10);
  Push(1, 11);
  Push(1, 12);
  Push(2, 20);
  Push(3, 30);
  for (int I = 0; I < 5; ++I) {
    std::optional<Job> J = Q.pop();
    ASSERT_TRUE(J.has_value());
    J->Work();
  }
  EXPECT_EQ(Order, (std::vector<int>{10, 20, 30, 11, 12}));
}

TEST(JobQueueTest, CloseWakesBlockedPopper) {
  JobQueue Q(4);
  std::thread Popper([&] {
    // Drains the one queued job, then unblocks empty on close.
    std::optional<Job> First = Q.pop();
    EXPECT_TRUE(First.has_value());
    std::optional<Job> Second = Q.pop();
    EXPECT_FALSE(Second.has_value());
  });
  EXPECT_TRUE(Q.tryPush({1, [] {}}));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Q.close();
  Popper.join();
  EXPECT_FALSE(Q.tryPush({1, [] {}})) << "closed queue refuses pushes";
}

TEST(JobQueueTest, ConcurrentProducersAndConsumers) {
  JobQueue Q(1024);
  std::atomic<int> Ran{0};
  std::vector<std::thread> Producers, Consumers;
  for (int P = 0; P < 4; ++P)
    Producers.emplace_back([&, P] {
      for (int I = 0; I < 50; ++I)
        while (!Q.tryPush({static_cast<uint64_t>(P), [&Ran] { ++Ran; }}))
          std::this_thread::yield();
    });
  for (int C = 0; C < 3; ++C)
    Consumers.emplace_back([&] {
      while (std::optional<Job> J = Q.pop())
        J->Work();
    });
  for (std::thread &T : Producers)
    T.join();
  while (Q.depth() > 0)
    std::this_thread::yield();
  Q.close();
  for (std::thread &T : Consumers)
    T.join();
  EXPECT_EQ(Ran.load(), 200);
}

// --- End-to-end daemon ---------------------------------------------------

namespace {

/// A running in-process daemon plus a connected client.
struct LiveServer {
  Server Daemon;
  ServeClient Client;

  explicit LiveServer(ServerOptions Opts = {}) : Daemon(std::move(Opts)) {
    std::string Error;
    EXPECT_TRUE(Daemon.start(Error)) << Error;
    EXPECT_TRUE(Client.connect("127.0.0.1", Daemon.port(), Error)) << Error;
  }
};

} // namespace

TEST(ServeEndToEndTest, SubmitTwiceSecondIsCacheHit) {
  LiveServer Live;
  SubmitRequest Request = fromVerifyOptions(pingPongOptions());
  Request.RequestId = 1;

  ServeReply First = Live.Client.submit(Request);
  ASSERT_EQ(First.K, ServeReply::Kind::Verdict) << First.Error;
  EXPECT_EQ(First.Verdict.RequestId, 1u);
  EXPECT_EQ(First.Verdict.ExitCode, 0);
  EXPECT_FALSE(First.Verdict.CacheHit);

  Request.RequestId = 2;
  ServeReply Second = Live.Client.submit(Request);
  ASSERT_EQ(Second.K, ServeReply::Kind::Verdict) << Second.Error;
  EXPECT_EQ(Second.Verdict.RequestId, 2u);
  EXPECT_TRUE(Second.Verdict.CacheHit);
  // Warm responses are byte-identical to the populating run's report.
  EXPECT_EQ(Second.Verdict.ReportJson, First.Verdict.ReportJson);

  // And the served verdict matches a one-shot in-process run modulo
  // timing fields.
  driver::VerifyResult Direct = driver::verifyModule(pingPongOptions());
  EXPECT_EQ(scrubTimings(First.Verdict.ReportJson),
            scrubTimings(driver::renderJson(Direct)));

  ServeReply Stats = Live.Client.stats(3);
  ASSERT_EQ(Stats.K, ServeReply::Kind::Stats);
  EXPECT_EQ(Stats.Stats.RequestId, 3u);
  EXPECT_EQ(Stats.Stats.Stats.JobsAccepted, 1u);
  EXPECT_EQ(Stats.Stats.Stats.JobsCompleted, 1u);
  EXPECT_EQ(Stats.Stats.Stats.CacheHits, 1u);
  EXPECT_EQ(Stats.Stats.Stats.CacheMisses, 1u);
  EXPECT_EQ(Stats.Stats.Stats.ActiveConnections, 1u);
}

TEST(ServeEndToEndTest, BadEngineConfigRejectedStreamSurvives) {
  LiveServer Live;
  SubmitRequest Request = fromVerifyOptions(pingPongOptions());
  Request.RequestId = 7;
  Request.Engine["frobnicate"] = "1";
  ASSERT_TRUE(Live.Client.send(Request));
  ServeReply Error = Live.Client.receive();
  EXPECT_EQ(Error.K, ServeReply::Kind::ServerError);
  EXPECT_NE(Error.Error.find("bad engine config"), std::string::npos)
      << Error.Error;
  EXPECT_NE(Error.Error.find("frobnicate"), std::string::npos);

  // A client-chosen thread budget is rejected the same way.
  Request.Engine.clear();
  Request.Engine["threads"] = "16";
  ASSERT_TRUE(Live.Client.send(Request));
  Error = Live.Client.receive();
  EXPECT_EQ(Error.K, ServeReply::Kind::ServerError);
  EXPECT_NE(Error.Error.find("--job-threads"), std::string::npos);

  // The stream survives and a corrected submission goes through.
  Request.Engine.clear();
  Request.Engine["work-stealing"] = "false";
  ASSERT_TRUE(Live.Client.send(Request));
  ServeReply Good = Live.Client.receive();
  ASSERT_EQ(Good.K, ServeReply::Kind::Verdict) << Good.Error;
  EXPECT_EQ(Good.Verdict.ExitCode, 0);

  ServeReply Stats = Live.Client.stats(8);
  ASSERT_EQ(Stats.K, ServeReply::Kind::Stats);
  EXPECT_GE(Stats.Stats.Stats.FramesRejected, 2u);
}

TEST(ServeEndToEndTest, DifferingEngineConfigsDoNotCoalesceOrCacheShare) {
  LiveServer Live;
  SubmitRequest Default = fromVerifyOptions(pingPongOptions());
  Default.RequestId = 1;
  ServeReply First = Live.Client.submit(Default);
  ASSERT_EQ(First.K, ServeReply::Kind::Verdict) << First.Error;
  EXPECT_FALSE(First.Verdict.CacheHit);

  // Same job, different engine config: a distinct cache identity, so it
  // must run cold, not attach to the cached verdict...
  SubmitRequest Tuned = fromVerifyOptions(pingPongOptions());
  Tuned.RequestId = 2;
  Tuned.Engine["work-stealing"] = "false";
  ServeReply Second = Live.Client.submit(Tuned);
  ASSERT_EQ(Second.K, ServeReply::Kind::Verdict) << Second.Error;
  EXPECT_FALSE(Second.Verdict.CacheHit)
      << "differing engine configs must not coalesce";
  // ...while the verdict itself is engine-invariant.
  EXPECT_EQ(Second.Verdict.ExitCode, First.Verdict.ExitCode);

  // Resubmitting each exact config is a hit for that config.
  Default.RequestId = 3;
  ServeReply Third = Live.Client.submit(Default);
  ASSERT_EQ(Third.K, ServeReply::Kind::Verdict) << Third.Error;
  EXPECT_TRUE(Third.Verdict.CacheHit);
  Tuned.RequestId = 4;
  ServeReply Fourth = Live.Client.submit(Tuned);
  ASSERT_EQ(Fourth.K, ServeReply::Kind::Verdict) << Fourth.Error;
  EXPECT_TRUE(Fourth.Verdict.CacheHit);

  ServeReply Stats = Live.Client.stats(9);
  ASSERT_EQ(Stats.K, ServeReply::Kind::Stats);
  EXPECT_EQ(Stats.Stats.Stats.JobsCoalesced, 0u);
  EXPECT_EQ(Stats.Stats.Stats.CacheMisses, 2u);
}

TEST(ServeEndToEndTest, CompileErrorYieldsExitCode2Verdict) {
  LiveServer Live;
  SubmitRequest Request;
  Request.RequestId = 1;
  Request.Source = "this is not ASL";
  Request.Eliminate = {"A"};
  ServeReply Reply = Live.Client.submit(Request);
  ASSERT_EQ(Reply.K, ServeReply::Kind::Verdict) << Reply.Error;
  EXPECT_EQ(Reply.Verdict.ExitCode, 2);
  EXPECT_NE(Reply.Verdict.ReportJson.find("\"compile_ok\":false"),
            std::string::npos);
}

TEST(ServeEndToEndTest, WrongVersionByteRejectedStreamSurvives) {
  LiveServer Live;
  // A well-framed message with version 9: targeted error, stream stays
  // usable for the next (valid) request.
  Marshall Body;
  Body << StatsRequest{1};
  Marshall Frame;
  Frame << static_cast<uint32_t>(Body.buffer().size() + 2)
        << static_cast<uint8_t>(9)
        << static_cast<uint8_t>(MsgType::StatsRequest);
  ASSERT_TRUE(Live.Client.sendRaw(Frame.buffer() + Body.buffer()));
  ServeReply Error = Live.Client.receive();
  EXPECT_EQ(Error.K, ServeReply::Kind::ServerError);
  EXPECT_NE(Error.Error.find("version"), std::string::npos);

  ServeReply Stats = Live.Client.stats(2);
  ASSERT_EQ(Stats.K, ServeReply::Kind::Stats);
  EXPECT_GE(Stats.Stats.Stats.FramesRejected, 1u);
}

TEST(ServeEndToEndTest, UnknownTypeRejectedStreamSurvives) {
  LiveServer Live;
  ASSERT_TRUE(Live.Client.sendRaw(
      encodeFrame(static_cast<MsgType>(0x42), "whatever")));
  ServeReply Error = Live.Client.receive();
  EXPECT_EQ(Error.K, ServeReply::Kind::ServerError);
  EXPECT_NE(Error.Error.find("message type"), std::string::npos);
  ServeReply Stats = Live.Client.stats(1);
  EXPECT_EQ(Stats.K, ServeReply::Kind::Stats);
}

TEST(ServeEndToEndTest, GarbageSubmitBodyRejectedStreamSurvives) {
  LiveServer Live;
  ASSERT_TRUE(Live.Client.sendRaw(
      encodeFrame(MsgType::SubmitRequest, "\xff\xfe garbage bytes")));
  ServeReply Error = Live.Client.receive();
  EXPECT_EQ(Error.K, ServeReply::Kind::ServerError);
  EXPECT_NE(Error.Error.find("SubmitRequest"), std::string::npos);
  ServeReply Stats = Live.Client.stats(1);
  EXPECT_EQ(Stats.K, ServeReply::Kind::Stats);
}

TEST(ServeEndToEndTest, OversizedLengthPrefixClosesConnection) {
  LiveServer Live;
  Marshall M;
  M << static_cast<uint32_t>(0xfffffffe);
  ASSERT_TRUE(Live.Client.sendRaw(M.take()));
  ServeReply Reply = Live.Client.receive();
  // Best-effort error response, then close; either way the connection
  // ends without a crash or hang.
  if (Reply.K == ServeReply::Kind::ServerError)
    Reply = Live.Client.receive();
  EXPECT_EQ(Reply.K, ServeReply::Kind::Disconnected);

  // The daemon survives and serves fresh connections.
  ServeClient Fresh;
  std::string Error;
  ASSERT_TRUE(Fresh.connect("127.0.0.1", Live.Daemon.port(), Error));
  EXPECT_EQ(Fresh.stats(1).K, ServeReply::Kind::Stats);
}

TEST(ServeEndToEndTest, TruncatedFrameThenHangupHandled) {
  LiveServer Live;
  // Promise 50 payload bytes, send 5, hang up: the handler sees a
  // truncated frame and drops the connection; the daemon lives on.
  Marshall M;
  M << static_cast<uint32_t>(50);
  ASSERT_TRUE(Live.Client.sendRaw(M.take() + "abcde"));
  Live.Client.close();

  ServeClient Fresh;
  std::string Error;
  ASSERT_TRUE(Fresh.connect("127.0.0.1", Live.Daemon.port(), Error));
  ServeReply Stats = Fresh.stats(1);
  ASSERT_EQ(Stats.K, ServeReply::Kind::Stats);
}

TEST(ServeEndToEndTest, PipelinedSubmissionsAllAnswered) {
  ServerOptions Opts;
  Opts.Workers = 2;
  LiveServer Live(Opts);
  // Pipeline: send all, then read all. Ids distinguish the replies;
  // distinct consts defeat the cache so every job really runs.
  driver::VerifyOptions Base = pingPongOptions();
  constexpr int N = 4;
  for (int I = 0; I < N; ++I) {
    SubmitRequest Request = fromVerifyOptions(Base);
    Request.Consts["T"] = 1 + (I % 2); // two distinct jobs, two repeats
    Request.RequestId = static_cast<uint64_t>(I) + 1;
    ASSERT_TRUE(Live.Client.send(Request));
  }
  int Verdicts = 0;
  std::set<uint64_t> Ids;
  for (int I = 0; I < N; ++I) {
    ServeReply Reply = Live.Client.receive();
    ASSERT_EQ(Reply.K, ServeReply::Kind::Verdict) << Reply.Error;
    EXPECT_EQ(Reply.Verdict.ExitCode, 0);
    Ids.insert(Reply.Verdict.RequestId);
    ++Verdicts;
  }
  EXPECT_EQ(Verdicts, N);
  EXPECT_EQ(Ids.size(), static_cast<size_t>(N));
}

TEST(ServeEndToEndTest, SingleFlightCoalescesIdenticalSubmissions) {
  // One worker. A slow blocker job occupies it; four identical cold
  // submissions then arrive, so the first becomes the in-flight leader
  // and the other three must attach as waiters instead of recomputing.
  ServerOptions Opts;
  Opts.Workers = 1;
  LiveServer Live(Opts);

  driver::VerifyOptions Blocker;
  Blocker.Source = readExampleAsl("two_phase_commit.asl");
  Blocker.Consts["n"] = 2;
  Blocker.Eliminate = {"RequestVotes", "Vote", "Decide", "Finalize"};
  Blocker.Abstractions = {{"Decide", "DecideAbs"}};
  Blocker.Weights = {{"RequestVotes", 8}, {"Decide", 4}};
  SubmitRequest Slow = fromVerifyOptions(Blocker);
  Slow.RequestId = 1;
  ASSERT_TRUE(Live.Client.send(Slow));

  constexpr int N = 4;
  SubmitRequest Same = fromVerifyOptions(pingPongOptions());
  for (int I = 0; I < N; ++I) {
    Same.RequestId = static_cast<uint64_t>(I) + 10;
    ASSERT_TRUE(Live.Client.send(Same));
  }

  int ColdVerdicts = 0, SharedVerdicts = 0;
  std::string FirstJson;
  for (int I = 0; I < N + 1; ++I) {
    ServeReply Reply = Live.Client.receive();
    ASSERT_EQ(Reply.K, ServeReply::Kind::Verdict) << Reply.Error;
    EXPECT_EQ(Reply.Verdict.ExitCode, 0);
    if (Reply.Verdict.RequestId < 10)
      continue; // the blocker
    if (Reply.Verdict.CacheHit)
      ++SharedVerdicts;
    else
      ++ColdVerdicts;
    if (FirstJson.empty())
      FirstJson = Reply.Verdict.ReportJson;
    else
      EXPECT_EQ(Reply.Verdict.ReportJson, FirstJson)
          << "coalesced verdicts must be byte-identical";
  }
  EXPECT_EQ(ColdVerdicts, 1) << "exactly one submission runs the pipeline";
  EXPECT_EQ(SharedVerdicts, N - 1);

  ServeReply Stats = Live.Client.stats(99);
  ASSERT_EQ(Stats.K, ServeReply::Kind::Stats);
  EXPECT_EQ(Stats.Stats.Stats.JobsAccepted, 2u); // blocker + leader
  EXPECT_EQ(Stats.Stats.Stats.JobsCompleted, 2u);
  EXPECT_EQ(Stats.Stats.Stats.JobsCoalesced, 3u);
}

TEST(ServeEndToEndTest, AdmissionControlUnderFlood) {
  // One worker, one queue slot: flood 8 distinct jobs without reading
  // replies. Every submission is answered — some with verdicts, the
  // overflow with REJECTED_BUSY — and nothing hangs.
  ServerOptions Opts;
  Opts.Workers = 1;
  Opts.QueueCapacity = 1;
  LiveServer Live(Opts);
  driver::VerifyOptions Base = pingPongOptions();
  constexpr int N = 8;
  for (int I = 0; I < N; ++I) {
    SubmitRequest Request = fromVerifyOptions(Base);
    Request.Consts["T"] = 2 + I; // all distinct: no cache short-circuit
    Request.RequestId = static_cast<uint64_t>(I) + 1;
    ASSERT_TRUE(Live.Client.send(Request));
  }
  int Verdicts = 0, Busy = 0;
  for (int I = 0; I < N; ++I) {
    ServeReply Reply = Live.Client.receive();
    if (Reply.K == ServeReply::Kind::Verdict)
      ++Verdicts;
    else if (Reply.K == ServeReply::Kind::Busy)
      ++Busy;
    else
      FAIL() << "unexpected reply: " << Reply.Error;
  }
  EXPECT_EQ(Verdicts + Busy, N);
  EXPECT_GE(Verdicts, 1);
  ServeReply Stats = Live.Client.stats(99);
  ASSERT_EQ(Stats.K, ServeReply::Kind::Stats);
  EXPECT_EQ(Stats.Stats.Stats.JobsRejected, static_cast<uint64_t>(Busy));
  EXPECT_EQ(Stats.Stats.Stats.JobsAccepted,
            static_cast<uint64_t>(Verdicts));
}

TEST(ServeEndToEndTest, StopWhileClientsConnected) {
  auto Live = std::make_unique<LiveServer>();
  ServeReply Stats = Live->Client.stats(1);
  ASSERT_EQ(Stats.K, ServeReply::Kind::Stats);
  Live->Daemon.stop(); // must not hang with the connection open
  ServeReply After = Live->Client.receive();
  EXPECT_EQ(After.K, ServeReply::Kind::Disconnected);
}

TEST(ServeEndToEndTest, SharedObligationCacheAcrossDistinctRequests) {
  // The daemon keeps one process-wide obligation verdict cache *below*
  // the whole-request VerdictCache: requests whose bytes differ (so the
  // request cache misses) still reuse every obligation whose semantic
  // fingerprints are unchanged. Comment-only variants are the sharpest
  // probe — every variant misses the request cache and fingerprints
  // identically. Two concurrent waves exercise both racy directions on
  // the shared cache (this test runs under TSan in tools/ci.sh): the
  // first wave races inserts while cold, the second races lazy lookups
  // while warm.
  LiveServer Live;
  driver::VerifyOptions Base = pingPongOptions();

  // Obligation-cache telemetry legitimately differs across cache states;
  // everything else in the verdicts must be bit-identical.
  auto ScrubCache = [](const std::string &Json) {
    static const std::regex Cache(
        "(\"(?:cache_hits|cache_misses|disk_hits)\":)[0-9]+");
    return std::regex_replace(scrubTimings(Json), Cache, "$010");
  };

  constexpr int Waves = 2, PerWave = 4;
  std::vector<std::string> Reports;
  std::mutex ReportsM;
  for (int Wave = 0; Wave < Waves; ++Wave) {
    std::vector<std::thread> Threads;
    for (int I = 0; I < PerWave; ++I) {
      Threads.emplace_back([&, Wave, I] {
        driver::VerifyOptions Variant = Base;
        Variant.Source = "// variant " + std::to_string(Wave) + "." +
                         std::to_string(I) + "\n" + Variant.Source;
        SubmitRequest Request = fromVerifyOptions(Variant);
        Request.RequestId = static_cast<uint64_t>(Wave * PerWave + I + 1);
        ServeClient Client;
        std::string Error;
        ASSERT_TRUE(Client.connect("127.0.0.1", Live.Daemon.port(), Error))
            << Error;
        ServeReply Reply = Client.submit(Request);
        ASSERT_EQ(Reply.K, ServeReply::Kind::Verdict) << Reply.Error;
        EXPECT_EQ(Reply.Verdict.ExitCode, 0);
        // Distinct bytes: never a whole-request cache hit.
        EXPECT_FALSE(Reply.Verdict.CacheHit);
        if (Wave > 0) {
          // The warm wave runs against a fully populated obligation
          // cache: nothing left to re-discharge.
          EXPECT_NE(Reply.Verdict.ReportJson.find("\"cache_misses\":0"),
                    std::string::npos)
              << Reply.Verdict.ReportJson;
        }
        std::lock_guard<std::mutex> Lock(ReportsM);
        Reports.push_back(Reply.Verdict.ReportJson);
      });
    }
    for (std::thread &T : Threads)
      T.join();
  }

  ASSERT_EQ(Reports.size(), static_cast<size_t>(Waves * PerWave));
  for (const std::string &Report : Reports)
    EXPECT_EQ(ScrubCache(Report), ScrubCache(Reports.front()));

  // And modulo the same scrub, the served verdicts match a one-shot
  // in-process run with no cache attached.
  driver::VerifyResult Direct = driver::verifyModule(Base);
  EXPECT_EQ(ScrubCache(Reports.front()),
            ScrubCache(driver::renderJson(Direct)));
}
