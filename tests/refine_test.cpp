//===- tests/refine_test.cpp - Refinement checker unit tests -------------------===//

#include "TestPrograms.h"
#include "refine/Refinement.h"

#include <gtest/gtest.h>

using namespace isq;
using namespace isq::testing;

namespace {

/// A universe of contexts over stores x ∈ [Lo, Hi] with empty Ω.
ContextUniverse xUniverse(int64_t Lo, int64_t Hi) {
  ContextUniverse U;
  for (int64_t X = Lo; X <= Hi; ++X)
    U.push_back({xStore(X), {}, PaMultiset()});
  return U;
}

/// x := x + 1, with a gate requiring x >= MinX.
Action incWithGate(const std::string &Name, int64_t MinX) {
  return Action(Name, 0,
                [MinX](const GateContext &Ctx) {
                  return Ctx.Global.get("x").getInt() >= MinX;
                },
                [](const Store &G, const std::vector<Value> &) {
                  int64_t X = G.get("x").getInt();
                  return std::vector<Transition>{
                      Transition(G.set("x", iv(X + 1)))};
                });
}

/// Nondeterministic x := x + 1 or x := x + 2.
Action incNondet(const std::string &Name) {
  return Action(Name, 0, Action::alwaysEnabled(),
                [](const Store &G, const std::vector<Value> &) {
                  int64_t X = G.get("x").getInt();
                  return std::vector<Transition>{
                      Transition(G.set("x", iv(X + 1))),
                      Transition(G.set("x", iv(X + 2)))};
                });
}

} // namespace

TEST(ActionRefinementTest, Reflexive) {
  Action A = incWithGate("ReflA", 0);
  EXPECT_TRUE(checkActionRefinement(A, A, xUniverse(-3, 3)).ok());
}

TEST(ActionRefinementTest, NondetAbstractsDet) {
  // The deterministic +1 refines the nondeterministic +1/+2.
  Action Det = updateX("DetInc", [](int64_t X) { return X + 1; });
  Action Nondet = incNondet("NondetInc");
  EXPECT_TRUE(checkActionRefinement(Det, Nondet, xUniverse(0, 5)).ok());
  // The reverse fails: +2 is not simulated by the deterministic action.
  CheckResult R = checkActionRefinement(Nondet, Det, xUniverse(0, 5));
  EXPECT_FALSE(R.ok());
  EXPECT_GT(R.failures(), 0u);
}

TEST(ActionRefinementTest, AbstractionMayFailMoreOften) {
  // a2's gate is stronger (fails more often): allowed by Definition 3.1.
  Action Concrete = incWithGate("ConcreteInc", INT64_MIN);
  Action Abstract = incWithGate("AbstractInc", 0);
  EXPECT_TRUE(
      checkActionRefinement(Concrete, Abstract, xUniverse(-3, 3)).ok());
  // The reverse direction violates gate inclusion: ρ2 ⊄ ρ1.
  CheckResult R =
      checkActionRefinement(Abstract, Concrete, xUniverse(-3, 3));
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.str().find("gate inclusion"), std::string::npos) << R.str();
}

TEST(ActionRefinementTest, TransitionsOutsideAbstractGateUnconstrained) {
  // Where the abstract gate is false, concrete transitions are ignored.
  Action Concrete = updateX("WildInc", [](int64_t X) { return X + 100; });
  Action Abstract = incWithGate("NarrowInc", 1000);
  EXPECT_TRUE(
      checkActionRefinement(Concrete, Abstract, xUniverse(-3, 3)).ok());
}

TEST(ActionRefinementTest, CountsObligations) {
  Action A = incWithGate("CountA", 0);
  CheckResult R = checkActionRefinement(A, A, xUniverse(0, 4));
  // 5 gate obligations + 5 transition obligations.
  EXPECT_EQ(R.obligations(), 10u);
}

TEST(CollectContextsTest, ExtractsPerPaContexts) {
  std::vector<Configuration> Configs;
  PaMultiset O1;
  O1.insert(PendingAsync("A", {iv(1)}));
  O1.insert(PendingAsync("A", {iv(2)}));
  O1.insert(PendingAsync("B", {}));
  Configs.emplace_back(xStore(0), O1);
  ContextUniverse U = collectContexts(Configs, Symbol::get("A"));
  EXPECT_EQ(U.size(), 2u);
  for (const ActionContext &Ctx : U)
    EXPECT_EQ(Ctx.Omega.size(), 3u) << "Ω is the full configuration Ω";
}

TEST(ProgramRefinementTest, IdenticalProgramsRefine) {
  Program P = makeIncrementProgram(2);
  EXPECT_TRUE(checkProgramRefinement(P, P, {{xStore(0), {}}}).ok());
}

TEST(ProgramRefinementTest, DetectsMissingTerminalStore) {
  Program P1 = makeIncrementProgram(2);
  Program P2 = makeIncrementProgram(3); // ends at x=3, not x=2
  CheckResult R = checkProgramRefinement(P1, P2, {{xStore(0), {}}});
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.str().find("terminal store"), std::string::npos) << R.str();
}

TEST(ProgramRefinementTest, FailingAbstractionIsVacuouslyRefined) {
  // P2 fails from x=1, so both conditions are vacuous there.
  Program P1 = makeIncrementProgram(1);
  Program P2 = makeConditionalFailProgram();
  EXPECT_TRUE(checkProgramRefinement(P1, P2, {{xStore(1), {}}}).ok());
}

TEST(ProgramRefinementTest, ConcreteFailureMustBePreserved) {
  // P1 fails from x=1 but P2 never fails: Good(P2) ⊄ Good(P1).
  Program P1 = makeConditionalFailProgram();
  Program P2 = makeIncrementProgram(0);
  CheckResult R = checkProgramRefinement(P1, P2, {{xStore(1), {}}});
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.str().find("can fail"), std::string::npos) << R.str();
}

TEST(CheckResultTest, IssueCapAndMerge) {
  CheckResult R;
  for (int I = 0; I < 20; ++I)
    R.fail("issue " + std::to_string(I));
  EXPECT_EQ(R.failures(), 20u);
  EXPECT_EQ(R.issues().size(), CheckResult::MaxIssues);
  CheckResult S;
  S.countObligation();
  S.merge(R);
  EXPECT_EQ(S.failures(), 20u);
  EXPECT_EQ(S.obligations(), 1u);
  EXPECT_FALSE(S.ok());
}
