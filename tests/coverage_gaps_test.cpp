//===- tests/coverage_gaps_test.cpp - Assorted API edge cases ------------------------===//

#include "TestPrograms.h"
#include "explorer/Explorer.h"
#include "is/Sequentialize.h"
#include "movers/MoverCheck.h"
#include "refine/Refinement.h"

#include <gtest/gtest.h>

using namespace isq;
using namespace isq::testing;

TEST(CoverageTest, StopAtFirstFailureShortCircuits) {
  // A program that both fails (via Check from x != 0) and has a long
  // healthy suffix: stopping early explores fewer configurations.
  Program P;
  P.addAction(Action("Main", 0, Action::alwaysEnabled(),
                     [](const Store &G, const std::vector<Value> &) {
                       Transition T(G);
                       T.Created.emplace_back("Check",
                                              std::vector<Value>{});
                       for (int I = 0; I < 6; ++I)
                         T.Created.emplace_back("Inc",
                                                std::vector<Value>{});
                       return std::vector<Transition>{std::move(T)};
                     }));
  P.addAction(Action("Check", 0,
                     [](const GateContext &Ctx) {
                       return Ctx.Global.get("x").getInt() == 0;
                     },
                     [](const Store &G, const std::vector<Value> &) {
                       return std::vector<Transition>{Transition(G)};
                     }));
  P.addAction(updateX("Inc", [](int64_t X) { return X + 1; }));

  ExploreOptions Eager;
  Eager.StopAtFirstFailure = true;
  ExploreResult Early = explore(P, initialConfiguration(xStore(1)), Eager);
  ExploreResult Full = explore(P, initialConfiguration(xStore(1)));
  EXPECT_TRUE(Early.FailureReachable);
  EXPECT_TRUE(Full.FailureReachable);
  EXPECT_LT(Early.Stats.NumTransitions, Full.Stats.NumTransitions);
}

TEST(CoverageTest, ParentTrackingCanBeDisabled) {
  Program P = makeConditionalFailProgram();
  ExploreOptions Opts;
  Opts.RecordParents = false;
  ExploreResult R = explore(P, initialConfiguration(xStore(1)), Opts);
  EXPECT_TRUE(R.FailureReachable);
  EXPECT_FALSE(R.FailureTrace.has_value())
      << "no trace without parent tracking";
}

TEST(CoverageTest, ExecutionValidationRejectsForeignPa) {
  Program P = makeIncrementProgram(1);
  Execution E;
  E.Initial = initialConfiguration(xStore(0));
  // Claims to execute a PA that is not pending.
  E.Steps.push_back(
      {PendingAsync("Inc", {}), Configuration(xStore(1), PaMultiset())});
  EXPECT_FALSE(E.isValid(P));
}

TEST(CoverageTest, ExecutionValidationRejectsStepsAfterFailure) {
  Program P = makeConditionalFailProgram();
  Configuration C0 = initialConfiguration(xStore(1));
  Configuration C1 = stepPendingAsync(P, C0, PendingAsync("Main", {}))[0];
  Execution E;
  E.Initial = C0;
  E.Steps.push_back({PendingAsync("Main", {}), C1});
  E.Steps.push_back({PendingAsync("Check", {}), Configuration::failure()});
  EXPECT_TRUE(E.isValid(P));
  // Nothing may execute after the failure configuration.
  E.Steps.push_back({PendingAsync("Check", {}), Configuration::failure()});
  EXPECT_FALSE(E.isValid(P));
}

TEST(CoverageTest, RestrictInvariantDropsOnlyETransitions) {
  // An invariant with transitions creating E-PAs, non-E-PAs, and nothing.
  ISApplication App;
  App.P = makeIncrementProgram(1);
  App.P.addAction(updateX("Other", [](int64_t X) { return X; }));
  App.M = Program::mainSymbol();
  App.E = {Symbol::get("Inc")};
  App.Invariant = Action(
      "Inv", 0, Action::alwaysEnabled(),
      [](const Store &G, const std::vector<Value> &) {
        Transition WithE(G);
        WithE.Created.emplace_back("Inc", std::vector<Value>{});
        Transition WithOther(G.set("x", iv(1)));
        WithOther.Created.emplace_back("Other", std::vector<Value>{});
        Transition Plain(G.set("x", iv(2)));
        return std::vector<Transition>{WithE, WithOther, Plain};
      });
  Action Restricted = restrictInvariant(App);
  auto Ts = Restricted.transitions(xStore(0), {});
  ASSERT_EQ(Ts.size(), 2u) << "only the Inc-creating transition is erased";
  EXPECT_EQ(Ts[0].Created.size(), 1u);
  EXPECT_EQ(Ts[0].Created[0].Action.str(), "Other");
  EXPECT_TRUE(Ts[1].Created.empty());
}

TEST(CoverageTest, ClassifyMoverBothForPureCreator) {
  // An action that only creates PAs commutes in both directions.
  Program P;
  P.addAction(Action("Main", 0, Action::alwaysEnabled(),
                     [](const Store &G, const std::vector<Value> &) {
                       return std::vector<Transition>{Transition(G)};
                     }));
  P.addAction(Action("Spawner", 0, Action::alwaysEnabled(),
                     [](const Store &G, const std::vector<Value> &) {
                       Transition T(G);
                       T.Created.emplace_back("Noop",
                                              std::vector<Value>{});
                       return std::vector<Transition>{std::move(T)};
                     }));
  P.addAction(Action("Noop", 0, Action::alwaysEnabled(),
                     [](const Store &G, const std::vector<Value> &) {
                       return std::vector<Transition>{Transition(G)};
                     }));
  PaMultiset Omega;
  Omega.insert(PendingAsync("Spawner", {}));
  Omega.insert(PendingAsync("Noop", {}));
  std::vector<Configuration> U{Configuration(xStore(0), Omega)};
  EXPECT_EQ(classifyMover(Symbol::get("Spawner"), P, U), MoverType::Both);
}

TEST(CoverageTest, ActionContextUniverseFromMultiplePas) {
  std::vector<Configuration> Configs;
  PaMultiset O;
  O.insert(PendingAsync("A", {iv(1)}), 3); // multiplicity 3, same args
  O.insert(PendingAsync("A", {iv(2)}));
  Configs.emplace_back(xStore(0), O);
  ContextUniverse U = collectContexts(Configs, Symbol::get("A"));
  // One context per *distinct* PA, not per copy.
  EXPECT_EQ(U.size(), 2u);
}

TEST(CoverageTest, SampleExecutionRespectsDepthLimit) {
  Program P = makeIncrementProgram(5);
  Rng R(3);
  EXPECT_FALSE(
      sampleExecution(P, initialConfiguration(xStore(0)), R, 2).has_value())
      << "6 steps needed, limit 2";
}
