//===- tests/chang_roberts_test.cpp - Chang-Roberts tests ------------------------===//

#include "explorer/Explorer.h"
#include "is/ISCheck.h"
#include "is/Rewriter.h"
#include "is/Sequentialize.h"
#include "protocols/ChangRoberts.h"
#include "refine/Refinement.h"

#include <gtest/gtest.h>

using namespace isq;
using namespace isq::protocols;

namespace {
InitialCondition init(const ChangRobertsParams &Params) {
  return {makeChangRobertsInitialStore(Params), {}};
}
} // namespace

TEST(ChangRobertsTest, ElectsTheMaximumIdNode) {
  ChangRobertsParams Params{4, {3, 1, 4, 2}};
  EXPECT_EQ(Params.maxNode(), 3);
  Program P = makeChangRobertsProgram(Params);
  ExploreResult R = explore(
      P, initialConfiguration(makeChangRobertsInitialStore(Params)));
  EXPECT_FALSE(R.FailureReachable);
  EXPECT_TRUE(R.Deadlocks.empty());
  ASSERT_FALSE(R.TerminalStores.empty());
  for (const Store &Final : R.TerminalStores)
    EXPECT_TRUE(checkChangRobertsSpec(Final, Params));
}

TEST(ChangRobertsTest, AllIdPermutationsOfThreeNodes) {
  std::vector<std::vector<int64_t>> Perms = {
      {1, 2, 3}, {1, 3, 2}, {2, 1, 3}, {2, 3, 1}, {3, 1, 2}, {3, 2, 1}};
  for (const auto &Ids : Perms) {
    ChangRobertsParams Params{3, Ids};
    ExploreResult R = explore(
        makeChangRobertsProgram(Params),
        initialConfiguration(makeChangRobertsInitialStore(Params)));
    for (const Store &Final : R.TerminalStores)
      EXPECT_TRUE(checkChangRobertsSpec(Final, Params))
          << "ids " << Ids[0] << Ids[1] << Ids[2];
  }
}

TEST(ChangRobertsTest, IteratedProofTwoStages) {
  // Table 1 row: #IS = 2 (first Init, then Handle).
  ChangRobertsParams Params{3, {2, 3, 1}};
  ISApplication Stage1 = makeChangRobertsStage1IS(Params);
  ISCheckReport R1 = checkIS(Stage1, {init(Params)});
  EXPECT_TRUE(R1.ok()) << R1.str();

  Program After1 = applyIS(Stage1);
  ISApplication Stage2 = makeChangRobertsStage2IS(Params, After1);
  ISCheckReport R2 = checkIS(Stage2, {init(Params)});
  EXPECT_TRUE(R2.ok()) << R2.str();

  Program After2 = applyIS(Stage2);
  ExploreResult R = explore(
      After2, initialConfiguration(makeChangRobertsInitialStore(Params)));
  EXPECT_EQ(R.Stats.NumConfigurations, 2u);
  ASSERT_EQ(R.TerminalStores.size(), 1u);
  EXPECT_TRUE(checkChangRobertsSpec(R.TerminalStores[0], Params));
  EXPECT_TRUE(checkProgramRefinement(makeChangRobertsProgram(Params),
                                     After2, {init(Params)})
                  .ok());
}

TEST(ChangRobertsTest, OneShotProof) {
  ChangRobertsParams Params{3, {3, 1, 2}};
  ISApplication App = makeChangRobertsOneShotIS(Params);
  ISCheckReport Report = checkIS(App, {init(Params)});
  EXPECT_TRUE(Report.ok()) << Report.str();
  EXPECT_TRUE(
      checkProgramRefinement(App.P, applyIS(App), {init(Params)}).ok());
}

TEST(ChangRobertsTest, FourNodeRing) {
  ChangRobertsParams Params{4, {2, 4, 1, 3}};
  ISApplication App = makeChangRobertsOneShotIS(Params);
  EXPECT_TRUE(checkIS(App, {init(Params)}).ok());
}

TEST(ChangRobertsTest, RewriterSequentializesConcurrentRuns) {
  ChangRobertsParams Params{3, {1, 3, 2}};
  ISApplication App = makeChangRobertsOneShotIS(Params);
  Configuration Init =
      initialConfiguration(makeChangRobertsInitialStore(Params));
  auto Execs = enumerateExecutions(App.P, Init, 300, 100);
  ASSERT_FALSE(Execs.empty());
  size_t Checked = 0;
  for (const Execution &Pi : Execs) {
    if (!Pi.isTerminating())
      continue;
    RewriteResult R = rewriteExecution(App, Pi);
    ASSERT_TRUE(R.Ok) << R.Error << "\nschedule: " << Pi.scheduleStr();
    EXPECT_EQ(R.Rewritten.finalConfiguration(), Pi.finalConfiguration());
    ++Checked;
  }
  EXPECT_GT(Checked, 5u);
}

TEST(ChangRobertsTest, MeasureDecreasesAlongExecutions) {
  ChangRobertsParams Params{3, {2, 1, 3}};
  ISApplication App = makeChangRobertsOneShotIS(Params);
  Configuration Init =
      initialConfiguration(makeChangRobertsInitialStore(Params));
  auto Execs = enumerateExecutions(App.P, Init, 50, 100);
  ASSERT_FALSE(Execs.empty());
  for (const Execution &Pi : Execs) {
    Configuration Prev = Pi.Initial;
    for (const ExecStep &Step : Pi.Steps) {
      if (Step.Executed.Action != Program::mainSymbol()) {
        EXPECT_TRUE(App.WfMeasure.decreases(Prev, Step.Successor))
            << Step.Executed.str();
      }
      Prev = Step.Successor;
    }
  }
}

TEST(ChangRobertsTest, SpecRejectsExtraLeaders) {
  ChangRobertsParams Params{3, {}};
  Store S = makeChangRobertsInitialStore(Params);
  EXPECT_FALSE(checkChangRobertsSpec(S, Params)) << "no leader yet";
  Value Leaders = S.get("leader")
                      .mapSet(Value::integer(3), Value::boolean(true));
  EXPECT_TRUE(checkChangRobertsSpec(S.set("leader", Leaders), Params));
  Value TwoLeaders =
      Leaders.mapSet(Value::integer(1), Value::boolean(true));
  EXPECT_FALSE(checkChangRobertsSpec(S.set("leader", TwoLeaders), Params));
}
