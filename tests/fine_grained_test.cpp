//===- tests/fine_grained_test.cpp - The full P1 ≼ P2 ≼ P' chain (§5.2) ---------===//
///
/// \file
/// The paper's complete methodology on broadcast consensus: a fine-grained
/// P1 (one send/receive per step) is reduced to the atomic-action P2 by
/// Lipton fusion, and P2 is sequentialized to P' by IS. Each link is
/// checked: mover annotations for the reduction, outcome equality across
/// the layers, and the IS conditions for the final step.
///
//===----------------------------------------------------------------------===//

#include "explorer/Explorer.h"
#include "is/ISCheck.h"
#include "is/Sequentialize.h"
#include "protocols/FineGrained.h"
#include "reduction/Reduction.h"

#include <gtest/gtest.h>

#include <unordered_set>

using namespace isq;
using namespace isq::protocols;

namespace {

std::unordered_set<Store> terminalsOf(const Program &P, const Store &Init) {
  auto [Good, Trans] = summarize(P, Init);
  EXPECT_TRUE(Good);
  return std::unordered_set<Store>(Trans.begin(), Trans.end());
}

} // namespace

TEST(FineGrainedTest, LowLevelProtocolReachesAgreement) {
  BroadcastParams Params{2, {4, 9}};
  Program P1 = makeFineBroadcastProgram(Params);
  ExploreResult R = explore(
      P1, initialConfiguration(makeFineBroadcastInitialStore(Params)));
  EXPECT_FALSE(R.FailureReachable);
  EXPECT_TRUE(R.Deadlocks.empty());
  ASSERT_FALSE(R.TerminalStores.empty());
  for (const Store &Final : R.TerminalStores)
    EXPECT_TRUE(checkBroadcastSpec(Final, Params));
}

TEST(FineGrainedTest, FineLayerHasMoreInterleavings) {
  BroadcastParams Params{2, {}};
  Store Init = makeFineBroadcastInitialStore(Params);
  ExploreResult Fine =
      explore(makeFineBroadcastProgram(Params), initialConfiguration(Init));
  Program P2 = makeBroadcastProgram(Params);
  ExploreResult Atomic = explore(P2, initialConfiguration(Init));
  EXPECT_GT(Fine.Stats.NumConfigurations, Atomic.Stats.NumConfigurations)
      << "per-message steps create strictly more interleavings";
}

TEST(FineGrainedTest, MoverAnnotationsVerified) {
  // §2 over bag channels: sends are left movers, receives right movers.
  BroadcastParams Params{2, {}};
  CheckResult R = checkFineBroadcastMoverAnnotations(Params);
  EXPECT_TRUE(R.ok()) << R.str();
  EXPECT_GT(R.obligations(), 0u);
}

TEST(FineGrainedTest, LiptonPatternOfBothLoops) {
  using M = MoverType;
  // broadcast(i): n left-moving sends.
  EXPECT_TRUE(checkAtomicPattern({M::Left, M::Left, M::Left}).ok());
  // collect(i): seed (both), n right-moving receives, publish (both).
  EXPECT_TRUE(
      checkAtomicPattern({M::Both, M::Right, M::Right, M::Both}).ok());
}

TEST(FineGrainedTest, ReductionPreservesOutcomes) {
  // P1 (fine) and the fused P2 have the same terminal stores.
  for (int64_t N : {2, 3}) {
    BroadcastParams Params{N, {}};
    Store Init = makeFineBroadcastInitialStore(Params);
    auto Fine = terminalsOf(makeFineBroadcastProgram(Params), Init);
    auto Fused = terminalsOf(makeReducedBroadcastProgram(Params), Init);
    EXPECT_EQ(Fine, Fused) << "n = " << N;
  }
}

TEST(FineGrainedTest, FusedLayerMatchesHandWrittenAtomicLayer) {
  // The fused P2 agrees with the hand-written atomic P2 of
  // protocols/Broadcast.cpp on the same initial store.
  BroadcastParams Params{2, {5, 3}};
  Store Init = makeFineBroadcastInitialStore(Params);
  auto Fused = terminalsOf(makeReducedBroadcastProgram(Params), Init);
  auto Atomic = terminalsOf(makeBroadcastProgram(Params), Init);
  EXPECT_EQ(Fused, Atomic);
}

TEST(FineGrainedTest, FullChainP1ToSequential) {
  // P1 --reduction--> P2 --IS--> P', with outcome preservation end to end.
  BroadcastParams Params{3, {}};
  Store Init = makeFineBroadcastInitialStore(Params);

  // Reduction step.
  ASSERT_TRUE(checkFineBroadcastMoverAnnotations(Params).ok());
  auto Fine = terminalsOf(makeFineBroadcastProgram(Params), Init);

  // IS step on the atomic layer.
  ISApplication App = makeBroadcastIS(Params);
  ISCheckReport Report = checkIS(App, {{Init, {}}});
  ASSERT_TRUE(Report.ok()) << Report.str();
  auto Sequential = terminalsOf(applyIS(App), Init);

  EXPECT_EQ(Fine, Sequential)
      << "the fine-grained protocol and the one-schedule program compute "
         "the same outcomes";
}

TEST(FineGrainedTest, FusedCollectBlocksUntilEnoughMessages) {
  BroadcastParams Params{2, {}};
  Program P2 = makeReducedBroadcastProgram(Params);
  Store Init = makeFineBroadcastInitialStore(Params);
  Configuration C0 = initialConfiguration(Init);
  Configuration C1 = stepPendingAsync(P2, C0, PendingAsync("Main", {}))[0];
  // No broadcasts yet: the fused collect has no complete path.
  EXPECT_TRUE(
      stepPendingAsync(P2, C1, PendingAsync("Collect", {Value::integer(1)}))
          .empty());
  // After one broadcast there is still only one of two needed messages.
  Configuration C2 =
      stepPendingAsync(P2, C1, PendingAsync("Broadcast", {Value::integer(2)}))[0];
  EXPECT_TRUE(
      stepPendingAsync(P2, C2, PendingAsync("Collect", {Value::integer(1)}))
          .empty());
}
