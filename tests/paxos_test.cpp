//===- tests/paxos_test.cpp - Paxos tests (§5.2, Fig. 4) --------------------------===//

#include "explorer/Explorer.h"
#include "is/ISCheck.h"
#include "is/Sequentialize.h"
#include "protocols/Paxos.h"
#include "refine/Refinement.h"

#include <gtest/gtest.h>

using namespace isq;
using namespace isq::protocols;

namespace {
InitialCondition init(const PaxosParams &Params) {
  return {makePaxosInitialStore(Params), {}};
}
} // namespace

TEST(PaxosTest, SafetyHoldsInEveryTerminalState) {
  PaxosParams Params{2, 3};
  Program P = makePaxosProgram(Params);
  ExploreResult R =
      explore(P, initialConfiguration(makePaxosInitialStore(Params)));
  EXPECT_FALSE(R.FailureReachable);
  EXPECT_TRUE(R.Deadlocks.empty());
  ASSERT_FALSE(R.TerminalStores.empty());
  for (const Store &Final : R.TerminalStores)
    EXPECT_TRUE(checkPaxosSpec(Final, Params));
}

TEST(PaxosTest, DecisionAndFailureBothReachable) {
  // With nondeterministic drops, some runs decide and some leave every
  // round undecided (consensus cannot be guaranteed, §5.2).
  PaxosParams Params{2, 3};
  Program P = makePaxosProgram(Params);
  ExploreResult R =
      explore(P, initialConfiguration(makePaxosInitialStore(Params)));
  bool Decided = false, Undecided = false;
  for (const Store &Final : R.TerminalStores) {
    if (paxosDecided(Final))
      Decided = true;
    else
      Undecided = true;
  }
  EXPECT_TRUE(Decided);
  EXPECT_TRUE(Undecided);
}

TEST(PaxosTest, LaterRoundLearnsEarlierDecision) {
  // If round 1 decided value 1, a deciding round 2 must also decide 1:
  // check no terminal store has decision[2] = 2 alongside decision[1] = 1,
  // but some store has both rounds deciding 1.
  PaxosParams Params{2, 3};
  Program P = makePaxosProgram(Params);
  ExploreResult R =
      explore(P, initialConfiguration(makePaxosInitialStore(Params)));
  bool BothDecideSame = false;
  for (const Store &Final : R.TerminalStores) {
    const Value &D1 = Final.get("decision").mapAt(Value::integer(1));
    const Value &D2 = Final.get("decision").mapAt(Value::integer(2));
    if (D1.isSome() && D2.isSome()) {
      EXPECT_EQ(D1.getSome().getInt(), D2.getSome().getInt());
      BothDecideSame = true;
    }
  }
  EXPECT_TRUE(BothDecideSame);
}

TEST(PaxosTest, ISIsAccepted) {
  PaxosParams Params{2, 3};
  ISApplication App = makePaxosIS(Params);
  ISCheckReport Report = checkIS(App, {init(Params)});
  EXPECT_TRUE(Report.ok()) << Report.str();
}

TEST(PaxosTest, SequentializedPaxosPreservesOutcomes) {
  // Two nodes keep this end-to-end test fast; quorums still intersect.
  PaxosParams Params{2, 2};
  ISApplication App = makePaxosIS(Params);
  ASSERT_TRUE(checkIS(App, {init(Params)}).ok());
  Program PPrime = applyIS(App);
  ExploreResult R = explore(
      PPrime, initialConfiguration(makePaxosInitialStore(Params)));
  EXPECT_EQ(R.Stats.NumConfigurations, 1u + R.TerminalStores.size())
      << "P' reaches every outcome in one atomic step";
  ASSERT_FALSE(R.TerminalStores.empty());
  for (const Store &Final : R.TerminalStores)
    EXPECT_TRUE(checkPaxosSpec(Final, Params));
  EXPECT_TRUE(
      checkProgramRefinement(App.P, PPrime, {init(Params)}).ok());
}

TEST(PaxosTest, MissingProposeAbstractionRejected) {
  PaxosParams Params{2, 2};
  ISApplication App = makePaxosIS(Params);
  App.Abstractions.erase(Symbol::get("Propose"));
  ISCheckReport Report = checkIS(App, {init(Params)});
  EXPECT_FALSE(Report.ok()) << Report.str();
}

TEST(PaxosTest, SingleRoundAlwaysConsistent) {
  PaxosParams Params{1, 3};
  ISApplication App = makePaxosIS(Params);
  EXPECT_TRUE(checkIS(App, {init(Params)}).ok());
}
