//===- tests/producer_consumer_test.cpp - Producer-Consumer tests -----------------===//

#include "explorer/Explorer.h"
#include "is/ISCheck.h"
#include "is/Sequentialize.h"
#include "protocols/ProducerConsumer.h"
#include "refine/Refinement.h"

#include <gtest/gtest.h>

using namespace isq;
using namespace isq::protocols;

namespace {
InitialCondition init(const ProducerConsumerParams &Params) {
  return {makeProducerConsumerInitialStore(Params), {}};
}
} // namespace

TEST(ProducerConsumerTest, ProtocolRunsToCompletion) {
  ProducerConsumerParams Params{4};
  Program P = makeProducerConsumerProgram(Params);
  ExploreResult R = explore(
      P, initialConfiguration(makeProducerConsumerInitialStore(Params)));
  EXPECT_FALSE(R.FailureReachable);
  EXPECT_TRUE(R.Deadlocks.empty());
  ASSERT_EQ(R.TerminalStores.size(), 1u);
  EXPECT_TRUE(checkProducerConsumerSpec(R.TerminalStores[0], Params));
}

TEST(ProducerConsumerTest, QueueGrowsInTheConcurrentProgram) {
  // The producer can run arbitrarily ahead: the queue reaches length T.
  ProducerConsumerParams Params{4};
  Program P = makeProducerConsumerProgram(Params);
  ExploreResult R = explore(
      P, initialConfiguration(makeProducerConsumerInitialStore(Params)));
  std::vector<Store> Stores;
  for (const Configuration &C : R.Reachable)
    Stores.push_back(C.global());
  EXPECT_EQ(maxQueueLength(Stores), 4u);
}

TEST(ProducerConsumerTest, ISIsAccepted) {
  ProducerConsumerParams Params{3};
  ISApplication App = makeProducerConsumerIS(Params);
  ISCheckReport Report = checkIS(App, {init(Params)});
  EXPECT_TRUE(Report.ok()) << Report.str();
}

TEST(ProducerConsumerTest, SequentializationBoundsQueueToOne) {
  // §5.3: "IS reduces the program to a sequentialization where the
  // producer and consumer alternate, and thus the queue contains at most
  // one element." The invariant's intermediate states witness this.
  ProducerConsumerParams Params{4};
  ISApplication App = makeProducerConsumerIS(Params);
  Store Init = makeProducerConsumerInitialStore(Params);
  std::vector<Store> InvariantStores;
  for (const Transition &T : App.Invariant.transitions(Init, {}))
    InvariantStores.push_back(T.Global);
  EXPECT_EQ(maxQueueLength(InvariantStores), 1u);
}

TEST(ProducerConsumerTest, RefinementHolds) {
  ProducerConsumerParams Params{3};
  ISApplication App = makeProducerConsumerIS(Params);
  ASSERT_TRUE(checkIS(App, {init(Params)}).ok());
  EXPECT_TRUE(
      checkProgramRefinement(App.P, applyIS(App), {init(Params)}).ok());
}

TEST(ProducerConsumerTest, SequentializedProgramSatisfiesSpec) {
  ProducerConsumerParams Params{5};
  ISApplication App = makeProducerConsumerIS(Params);
  Program PPrime = applyIS(App);
  ExploreResult R = explore(
      PPrime,
      initialConfiguration(makeProducerConsumerInitialStore(Params)));
  EXPECT_EQ(R.Stats.NumConfigurations, 2u);
  ASSERT_EQ(R.TerminalStores.size(), 1u);
  EXPECT_TRUE(checkProducerConsumerSpec(R.TerminalStores[0], Params));
}

TEST(ProducerConsumerTest, WrongRankOrderRejected) {
  // Scheduling the consumer before the producer dequeues from an empty
  // queue: the abstraction's gate cannot be discharged in (I3).
  ProducerConsumerParams Params{2};
  ISApplication App = makeProducerConsumerIS(Params);
  App.Choice = ISApplication::chooseInOrder(
      {Symbol::get("Consumer"), Symbol::get("Producer")});
  ISCheckReport Report = checkIS(App, {init(Params)});
  EXPECT_FALSE(Report.ok());
  EXPECT_FALSE(Report.InductiveStep.ok()) << Report.str();
}

TEST(ProducerConsumerTest, SingleItemInstance) {
  ProducerConsumerParams Params{1};
  ISApplication App = makeProducerConsumerIS(Params);
  EXPECT_TRUE(checkIS(App, {init(Params)}).ok());
}
