//===- tests/pingpong_test.cpp - Ping-Pong protocol tests ------------------------===//

#include "explorer/Explorer.h"
#include "is/ISCheck.h"
#include "is/Rewriter.h"
#include "is/Sequentialize.h"
#include "protocols/PingPong.h"
#include "refine/Refinement.h"

#include <gtest/gtest.h>

using namespace isq;
using namespace isq::protocols;

namespace {
InitialCondition init(const PingPongParams &Params) {
  return {makePingPongInitialStore(Params), {}};
}
} // namespace

TEST(PingPongTest, ProtocolRunsToCompletion) {
  PingPongParams Params{3};
  Program P = makePingPongProgram(Params);
  ExploreResult R =
      explore(P, initialConfiguration(makePingPongInitialStore(Params)));
  EXPECT_FALSE(R.FailureReachable);
  EXPECT_TRUE(R.Deadlocks.empty());
  ASSERT_EQ(R.TerminalStores.size(), 1u);
  EXPECT_TRUE(checkPingPongSpec(R.TerminalStores[0], Params));
}

TEST(PingPongTest, AssertionsCatchWrongAcknowledgments) {
  PingPongParams Params{2};
  Program Buggy = makeBuggyPingPongProgram(Params);
  ExploreResult R = explore(
      Buggy, initialConfiguration(makePingPongInitialStore(Params)));
  EXPECT_TRUE(R.FailureReachable)
      << "Ping's gate must reject the off-by-one acknowledgment";
}

TEST(PingPongTest, ISIsAccepted) {
  PingPongParams Params{3};
  ISApplication App = makePingPongIS(Params);
  ISCheckReport Report = checkIS(App, {init(Params)});
  EXPECT_TRUE(Report.ok()) << Report.str();
}

TEST(PingPongTest, SequentializationAlternates) {
  PingPongParams Params{3};
  ISApplication App = makePingPongIS(Params);
  Program PPrime = applyIS(App);
  ExploreResult R = explore(
      PPrime, initialConfiguration(makePingPongInitialStore(Params)));
  EXPECT_EQ(R.Stats.NumConfigurations, 2u);
  ASSERT_EQ(R.TerminalStores.size(), 1u);
  EXPECT_TRUE(checkPingPongSpec(R.TerminalStores[0], Params));
}

TEST(PingPongTest, RefinementHolds) {
  PingPongParams Params{2};
  ISApplication App = makePingPongIS(Params);
  ASSERT_TRUE(checkIS(App, {init(Params)}).ok());
  EXPECT_TRUE(
      checkProgramRefinement(App.P, applyIS(App), {init(Params)}).ok());
}

TEST(PingPongTest, RewriterHandlesAllExecutions) {
  PingPongParams Params{2};
  ISApplication App = makePingPongIS(Params);
  Configuration Init =
      initialConfiguration(makePingPongInitialStore(Params));
  auto Execs = enumerateExecutions(App.P, Init, 500, 100);
  ASSERT_FALSE(Execs.empty());
  for (const Execution &Pi : Execs) {
    ASSERT_TRUE(Pi.isTerminating()) << Pi.scheduleStr();
    RewriteResult R = rewriteExecution(App, Pi);
    ASSERT_TRUE(R.Ok) << R.Error << "\nschedule: " << Pi.scheduleStr();
    EXPECT_EQ(R.Rewritten.finalConfiguration(), Pi.finalConfiguration());
  }
}

TEST(PingPongTest, SingleRoundInstance) {
  PingPongParams Params{1};
  ISApplication App = makePingPongIS(Params);
  EXPECT_TRUE(checkIS(App, {init(Params)}).ok());
  ExploreResult R = explore(
      applyIS(App), initialConfiguration(makePingPongInitialStore(Params)));
  ASSERT_EQ(R.TerminalStores.size(), 1u);
  EXPECT_TRUE(checkPingPongSpec(R.TerminalStores[0], Params));
}

TEST(PingPongTest, MissingAbstractionRejected) {
  PingPongParams Params{2};
  ISApplication App = makePingPongIS(Params);
  App.Abstractions.erase(Symbol::get("Pong"));
  ISCheckReport Report = checkIS(App, {init(Params)});
  EXPECT_FALSE(Report.ok());
  EXPECT_FALSE(Report.LeftMovers.ok())
      << "the blocking receive must break non-blocking:\n"
      << Report.str();
}
