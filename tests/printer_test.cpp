//===- tests/printer_test.cpp - ASL pretty-printer round-trip tests ----------------===//

#include "lang/Compile.h"
#include "lang/Parser.h"
#include "lang/Printer.h"

#include <gtest/gtest.h>

using namespace isq;
using namespace isq::asl;

namespace {

Module parseOk(const std::string &Source) {
  std::vector<Diagnostic> Diags;
  auto M = parseModule(Source, Diags);
  EXPECT_TRUE(M.has_value()) << (Diags.empty() ? "" : Diags[0].str());
  return M ? std::move(*M) : Module();
}

/// Parse → print → parse → print must be a fixed point.
void expectRoundTrip(const std::string &Source) {
  Module First = parseOk(Source);
  std::string Printed = printModule(First);
  Module Second = parseOk(Printed);
  EXPECT_EQ(Printed, printModule(Second)) << "printer not idempotent for:\n"
                                          << Source;
}

std::string exprOf(const std::string &ExprText) {
  Module M = parseOk("action A() { assert " + ExprText + "; }");
  return printExpr(*M.Actions[0].Body[0]->Exprs[0]);
}

} // namespace

TEST(PrinterTest, ExpressionsMinimalParens) {
  EXPECT_EQ(exprOf("1 + 2 * 3"), "1 + 2 * 3");
  EXPECT_EQ(exprOf("(1 + 2) * 3"), "(1 + 2) * 3");
  EXPECT_EQ(exprOf("1 - (2 - 3)"), "1 - (2 - 3)");
  EXPECT_EQ(exprOf("1 - 2 - 3"), "1 - 2 - 3");
  EXPECT_EQ(exprOf("a && b || c"), "a && b || c");
  EXPECT_EQ(exprOf("a && (b || c)"), "a && (b || c)");
  EXPECT_EQ(exprOf("!(a || b)"), "!(a || b)");
  EXPECT_EQ(exprOf("-x + 1"), "-x + 1");
  EXPECT_EQ(exprOf("x == y + 1"), "x == y + 1");
}

TEST(PrinterTest, CallsIndexesAndOptions) {
  EXPECT_EQ(exprOf("size(CH[i]) >= n"), "size(CH[i]) >= n");
  EXPECT_EQ(exprOf("m[1][2] == 3"), "m[1][2] == 3");
  EXPECT_EQ(exprOf("is_some(some(5))"), "is_some(some(5))");
  EXPECT_EQ(exprOf("insert(b, max(b)) == b"), "insert(b, max(b)) == b");
}

TEST(PrinterTest, RoundTripBroadcast) {
  expectRoundTrip(R"(
const n: int;
var value: map<int, int> := map i in 1 .. n : i;
var decision: map<int, option<int>> := map i in 1 .. n : none;
var CH: map<int, bag<int>> := map i in 1 .. n : {};
action Main() {
  for i in 1 .. n {
    async Broadcast(i);
    async Collect(i);
  }
}
action Broadcast(i: int) {
  for j in 1 .. n {
    CH[j] := insert(CH[j], value[i]);
  }
}
action Collect(i: int) {
  await size(CH[i]) >= n;
  choose vs in sub_bags(CH[i], n);
  CH[i] := diff(CH[i], vs);
  decision[i] := some(max(vs));
}
)");
}

TEST(PrinterTest, RoundTripAllStatementForms) {
  expectRoundTrip(R"(
var x: map<int, int> := {};
var q: seq<int> := [];
action A(i: int, b: bool) {
  skip;
  x[i] := i + 1;
  if b { skip; } else { assert false; }
  if x[i] == 2 { x[i] := 0; }
  for j in 1 .. i { async A(j, true); }
  await x[i] > 0;
  choose y in keys(x);
  x[y] := 0;
}
)");
}

TEST(PrinterTest, SeqAndCollectionLiteralsKeepSpelling) {
  Module M = parseOk("var q: seq<int> := [];\nvar s: set<int> := {};\n");
  std::string Printed = printModule(M);
  EXPECT_NE(Printed.find("seq<int> := []"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("set<int> := {}"), std::string::npos) << Printed;
}

TEST(PrinterTest, PrintedModuleCompilesIdentically) {
  // Semantic round trip: compiling the printed text yields a program with
  // the same initial store and the same Main transitions.
  const char *Source = R"(
const n: int;
var total: int := 0;
var b: bag<int> := insert({}, 7);
action Main() {
  for i in 1 .. n { async Add(i); }
}
action Add(i: int) {
  total := total + i;
  if contains(b, 7) { b := erase(b, 7); }
}
)";
  std::vector<Diagnostic> Diags;
  auto C1 = compileModule(Source, {{"n", 3}}, Diags);
  ASSERT_TRUE(C1.has_value()) << (Diags.empty() ? "" : Diags[0].str());
  Module Parsed = parseOk(Source);
  auto C2 = compileModule(printModule(Parsed), {{"n", 3}}, Diags);
  ASSERT_TRUE(C2.has_value()) << (Diags.empty() ? "" : Diags[0].str());
  EXPECT_EQ(C1->InitialStore, C2->InitialStore);
  auto T1 = C1->P.action("Main").transitions(C1->InitialStore, {});
  auto T2 = C2->P.action("Main").transitions(C2->InitialStore, {});
  ASSERT_EQ(T1.size(), T2.size());
  for (size_t I = 0; I < T1.size(); ++I)
    EXPECT_TRUE(T1[I] == T2[I]);
}

TEST(PrinterTest, MapComprehension) {
  EXPECT_EQ(exprOf("size(map i in 1 .. 3 : i * i) == 3"),
            "size(map i in 1 .. 3 : i * i) == 3");
}
