//===- tests/symmetry_test.cpp - Orbit-canonical symmetry reduction ----------------===//
///
/// \file
/// Tests for the scalarset symmetry reduction (semantics/Symmetry.h) and
/// its integration with the state-space engine, the IS checkers, and the
/// isq-verify driver:
///
///  - group-action laws of SymmetrySpec (round trips, canonical form is
///    the lex-least image, orbit sizes divide the group order);
///  - quotient exploration: fewer interned configurations, identical
///    failure verdict, Σ orbit sizes == unreduced reachable count, and
///    orbit-expanded terminal stores equal to the unreduced set;
///  - `--symmetry` vs `--no-symmetry` differentials: identical verdicts,
///    diagnostics and accepted-status for every bundled protocol and for
///    the shipped ASL examples at 1, 2 and 8 threads.
///
/// Equivariance of the protocol actions is not checked statically (see
/// DESIGN.md); these differentials are the oracle that it holds on the
/// instances we ship.
///
//===----------------------------------------------------------------------===//

#include "driver/VerifyDriver.h"
#include "explorer/Explorer.h"
#include "is/ISCheck.h"
#include "is/Sequentialize.h"
#include "protocols/Broadcast.h"
#include "protocols/ChangRoberts.h"
#include "protocols/NBuyer.h"
#include "protocols/Paxos.h"
#include "protocols/PingPong.h"
#include "protocols/ProducerConsumer.h"
#include "protocols/TwoPhaseCommit.h"
#include "semantics/Symmetry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <numeric>
#include <sstream>

using namespace isq;
using namespace isq::protocols;

namespace {

/// All permutation images of \p Domain (the spec enumerates these
/// internally; tests re-derive them to probe the group action from the
/// outside).
std::vector<std::vector<int64_t>> allImages(std::vector<int64_t> Domain) {
  std::sort(Domain.begin(), Domain.end());
  std::vector<std::vector<int64_t>> Images;
  do {
    Images.push_back(Domain);
  } while (std::next_permutation(Domain.begin(), Domain.end()));
  return Images;
}

/// The inverse image vector of \p Image over \p Domain.
std::vector<int64_t> inverseImage(const std::vector<int64_t> &Domain,
                                  const std::vector<int64_t> &Image) {
  std::vector<int64_t> Inv(Domain.size());
  for (size_t I = 0; I < Domain.size(); ++I) {
    size_t Pos = std::lower_bound(Domain.begin(), Domain.end(), Image[I]) -
                 Domain.begin();
    Inv[Pos] = Domain[I];
  }
  return Inv;
}

/// A small pool of distinct reachable configurations of \p P from
/// \p Init, explored unreduced.
std::vector<Configuration> sampleConfigs(const Program &P, const Store &Init,
                                         size_t Max) {
  ExploreOptions Opts;
  Opts.Config.Symmetry = false;
  ExploreResult R = explore(P, initialConfiguration(Init), Opts);
  if (R.Reachable.size() > Max) {
    // Deterministic spread over the whole exploration order.
    std::vector<Configuration> Picked;
    for (size_t I = 0; I < Max; ++I)
      Picked.push_back(R.Reachable[I * R.Reachable.size() / Max]);
    return Picked;
  }
  return R.Reachable;
}

ExploreResult exploreWith(const Program &P, const Store &Init, bool Symmetry,
                          unsigned Threads = 1) {
  ExploreOptions Opts;
  Opts.Config.Symmetry = Symmetry;
  Opts.Config.NumThreads = Threads;
  return explore(P, initialConfiguration(Init), Opts);
}

} // namespace

// --- Group-action laws ----------------------------------------------------

TEST(SymmetrySpecTest, DomainIsSortedAndDeduplicated) {
  SymmetrySpec Spec("node", {3, 1, 2, 3, 1});
  EXPECT_EQ(Spec.domain(), (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(Spec.numPermutations(), 6u);
  EXPECT_EQ(Spec.sortName(), "node");
}

TEST(SymmetrySpecTest, PermutationRoundTripsOnProtocolState) {
  TwoPhaseCommitParams Params{3};
  Program P = makeTwoPhaseCommitProgram(Params);
  ASSERT_TRUE(P.symmetry());
  const SymmetrySpec &Spec = *P.symmetry();
  Store Init = makeTwoPhaseCommitInitialStore(Params);
  for (const Configuration &C : sampleConfigs(P, Init, 20)) {
    for (const std::vector<int64_t> &Image : allImages(Spec.domain())) {
      Configuration Permuted = Spec.permuteConfiguration(C, Image);
      Configuration Back = Spec.permuteConfiguration(
          Permuted, inverseImage(Spec.domain(), Image));
      EXPECT_EQ(Back, C);
    }
  }
}

TEST(SymmetrySpecTest, CanonicalIsLexLeastImageAndOrbitInvariant) {
  TwoPhaseCommitParams Params{3};
  Program P = makeTwoPhaseCommitProgram(Params);
  ASSERT_TRUE(P.symmetry());
  const SymmetrySpec &Spec = *P.symmetry();
  Store Init = makeTwoPhaseCommitInitialStore(Params);
  for (const Configuration &C : sampleConfigs(P, Init, 12)) {
    uint64_t OrbitSize = 0;
    Configuration Canon = Spec.canonical(C, &OrbitSize);
    // Idempotent, and every image canonicalizes to the same representative.
    EXPECT_EQ(Spec.canonical(Canon), Canon);
    std::vector<Configuration> Orbit;
    for (const std::vector<int64_t> &Image : allImages(Spec.domain())) {
      Configuration Permuted = Spec.permuteConfiguration(C, Image);
      EXPECT_EQ(Spec.canonical(Permuted), Canon);
      EXPECT_FALSE(Permuted < Canon) << "canonical form is not lex-least";
      Orbit.push_back(std::move(Permuted));
    }
    // Orbit size is the number of distinct images and divides |G| = n!.
    std::sort(Orbit.begin(), Orbit.end());
    Orbit.erase(std::unique(Orbit.begin(), Orbit.end()), Orbit.end());
    EXPECT_EQ(OrbitSize, Orbit.size());
    EXPECT_EQ(Spec.numPermutations() % OrbitSize, 0u);
    EXPECT_EQ(Canon, Orbit.front());
  }
}

// The engine's fast path canonicalizes the store first and then permutes
// Ω only under the store-minimizing permutations; check both halves of
// that decomposition against brute-force image enumeration.
TEST(SymmetrySpecTest, CanonicalStoreIsLexLeastAndReportsAllArgmins) {
  TwoPhaseCommitParams Params{3};
  Program P = makeTwoPhaseCommitProgram(Params);
  ASSERT_TRUE(P.symmetry());
  const SymmetrySpec &Spec = *P.symmetry();
  Store Init = makeTwoPhaseCommitInitialStore(Params);
  for (const Configuration &C : sampleConfigs(P, Init, 12)) {
    std::vector<uint32_t> MinPerms;
    Store Canon = Spec.canonicalStore(C.global(), &MinPerms);
    ASSERT_FALSE(MinPerms.empty());
    std::vector<uint32_t> Expected;
    for (uint32_t I = 0; I < Spec.numPermutations(); ++I) {
      Store Img = Spec.permuteStore(C.global(), Spec.perm(I));
      EXPECT_FALSE(Img < Canon) << "canonical store is not lex-least";
      if (Img == Canon)
        Expected.push_back(I);
    }
    EXPECT_EQ(MinPerms, Expected);
    // permuteOmega agrees with the configuration-level action.
    for (uint32_t I : MinPerms) {
      Configuration Permuted = Spec.permuteConfiguration(C, Spec.perm(I));
      EXPECT_EQ(Permuted.global(), Canon);
      EXPECT_EQ(Permuted.pendingAsyncs(),
                Spec.permuteOmega(C.pendingAsyncs(), Spec.perm(I)));
    }
  }
}

TEST(SymmetrySpecTest, OutOfDomainIdsAreFixedPoints) {
  SymmetrySpec Spec("node", {1, 2, 3});
  ValueShape Shape = ValueShape::seqOf(ValueShape::id());
  Value V = Value::seq({Value::integer(0), Value::integer(2),
                        Value::integer(7), Value::integer(3)});
  // The reversing permutation 1↔3 moves only in-domain ids.
  Value W = Spec.permuteValue(V, Shape, {3, 2, 1});
  EXPECT_EQ(W, Value::seq({Value::integer(0), Value::integer(2),
                           Value::integer(7), Value::integer(1)}));
}

TEST(SymmetrySpecTest, StoreOrbitIsSortedDistinctAndClosed) {
  TwoPhaseCommitParams Params{3};
  Program P = makeTwoPhaseCommitProgram(Params);
  const SymmetrySpec &Spec = *P.symmetry();
  Store Init = makeTwoPhaseCommitInitialStore(Params);
  // The initial store is invariant: a singleton orbit.
  EXPECT_TRUE(Spec.isInvariantStore(Init));
  EXPECT_EQ(Spec.storeOrbit(Init), std::vector<Store>{Init});
  for (const Configuration &C : sampleConfigs(P, Init, 12)) {
    std::vector<Store> Orbit = Spec.storeOrbit(C.global());
    EXPECT_TRUE(std::is_sorted(Orbit.begin(), Orbit.end()));
    EXPECT_EQ(std::unique(Orbit.begin(), Orbit.end()), Orbit.end());
    // Closure: the orbit of every member is the same set.
    for (const Store &G : Orbit)
      EXPECT_EQ(Spec.storeOrbit(G), Orbit);
  }
}

// --- Quotient exploration -------------------------------------------------

namespace {

/// Asserts the engine-level quotient laws of one symmetric instance.
void expectQuotientLaws(const std::string &Name, const Program &P,
                        const Store &Init) {
  ASSERT_TRUE(P.symmetry()) << Name;
  ExploreResult Reduced = exploreWith(P, Init, /*Symmetry=*/true);
  ExploreResult Unreduced = exploreWith(P, Init, /*Symmetry=*/false);
  ASSERT_FALSE(Reduced.Stats.Truncated) << Name;
  ASSERT_FALSE(Unreduced.Stats.Truncated) << Name;

  EXPECT_TRUE(Reduced.Engine.SymmetryReduced) << Name;
  EXPECT_FALSE(Unreduced.Engine.SymmetryReduced) << Name;
  EXPECT_LT(Reduced.Stats.NumConfigurations, Unreduced.Stats.NumConfigurations)
      << Name << ": quotient did not shrink the state space";
  EXPECT_EQ(Reduced.FailureReachable, Unreduced.FailureReachable) << Name;

  // Orbit closure: the orbits of the reached representatives partition the
  // unreduced reachable set, so their sizes sum to its cardinality.
  EXPECT_EQ(Reduced.Engine.OrbitStatesRepresented,
            Unreduced.Stats.NumConfigurations)
      << Name << ": orbit sizes do not sum to the unreduced state count";

  // Terminal stores, expanded to orbits, are exactly the unreduced set.
  std::vector<Store> Expanded;
  for (const Store &S : Reduced.TerminalStores) {
    std::vector<Store> Orbit = P.symmetry()->storeOrbit(S);
    Expanded.insert(Expanded.end(), Orbit.begin(), Orbit.end());
  }
  std::sort(Expanded.begin(), Expanded.end());
  EXPECT_EQ(Expanded, Unreduced.TerminalStores) << Name;

  // summarize performs that expansion itself (Definition 3.2's Trans is a
  // semantic object): both modes agree verbatim.
  ExploreOptions On, Off;
  Off.Config.Symmetry = false;
  EXPECT_EQ(summarize(P, Init, {}, On), summarize(P, Init, {}, Off)) << Name;
}

} // namespace

TEST(SymmetryEngineTest, TwoPhaseCommitQuotient) {
  for (int64_t N : {2, 3}) {
    TwoPhaseCommitParams Params{N};
    expectQuotientLaws("2pc/" + std::to_string(N),
                       makeTwoPhaseCommitProgram(Params),
                       makeTwoPhaseCommitInitialStore(Params));
  }
}

TEST(SymmetryEngineTest, PaxosQuotient) {
  for (int64_t N : {2, 3}) {
    PaxosParams Params{2, N};
    expectQuotientLaws("paxos/" + std::to_string(N),
                       makePaxosProgram(Params),
                       makePaxosInitialStore(Params));
  }
}

TEST(SymmetryEngineTest, QuotientIsThreadCountInvariant) {
  TwoPhaseCommitParams Params{3};
  Program P = makeTwoPhaseCommitProgram(Params);
  Store Init = makeTwoPhaseCommitInitialStore(Params);
  ExploreResult Serial = exploreWith(P, Init, /*Symmetry=*/true, 1);
  for (unsigned Threads : {2u, 8u}) {
    ExploreResult Parallel = exploreWith(P, Init, /*Symmetry=*/true, Threads);
    EXPECT_EQ(Parallel.Stats.NumConfigurations, Serial.Stats.NumConfigurations);
    EXPECT_EQ(Parallel.FailureReachable, Serial.FailureReachable);
    EXPECT_EQ(Parallel.TerminalStores, Serial.TerminalStores);
    EXPECT_EQ(Parallel.Engine.OrbitStatesRepresented,
              Serial.Engine.OrbitStatesRepresented);
  }
}

// --- Checker differentials over the bundled protocols ---------------------

namespace {

void expectSameCondition(const std::string &Name, const CheckResult &A,
                         const CheckResult &B) {
  EXPECT_EQ(A.ok(), B.ok()) << Name;
  EXPECT_EQ(A.issues(), B.issues()) << Name;
}

/// Checks \p App with the quotient and the unreduced universe; verdicts and
/// diagnostics must agree (and be accepting — our bundled applications are
/// all valid, so any disagreement pins a broken equivariance assumption).
void expectCheckerDifferential(const std::string &Name,
                               const ISApplication &App, const Store &Init) {
  ExploreOptions On, Off;
  Off.Config.Symmetry = false;
  ISCheckReport Reduced = checkIS(App, {{Init, {}}}, On);
  ISCheckReport Unreduced = checkIS(App, {{Init, {}}}, Off);
  EXPECT_TRUE(Reduced.ok()) << Name << ":\n" << Reduced.str();
  expectSameCondition(Name, Reduced.SideConditions, Unreduced.SideConditions);
  expectSameCondition(Name, Reduced.AbstractionRefinement,
                      Unreduced.AbstractionRefinement);
  expectSameCondition(Name, Reduced.BaseCase, Unreduced.BaseCase);
  expectSameCondition(Name, Reduced.Conclusion, Unreduced.Conclusion);
  expectSameCondition(Name, Reduced.InductiveStep, Unreduced.InductiveStep);
  expectSameCondition(Name, Reduced.LeftMovers, Unreduced.LeftMovers);
  expectSameCondition(Name, Reduced.Cooperation, Unreduced.Cooperation);
}

} // namespace

TEST(SymmetryCheckerTest, SymmetricProtocolVerdictsMatchUnreduced) {
  {
    TwoPhaseCommitParams Params{2};
    expectCheckerDifferential("2pc/2", makeTwoPhaseCommitOneShotIS(Params),
                              makeTwoPhaseCommitInitialStore(Params));
  }
  {
    PaxosParams Params{2, 2};
    expectCheckerDifferential("paxos/2x2", makePaxosIS(Params),
                              makePaxosInitialStore(Params));
  }
}

TEST(SymmetryCheckerTest, NonSymmetricProtocolsAreUnaffected) {
  // Programs without a declared symmetric sort take the identical path in
  // both modes: the differential is trivial but pins the flag as a no-op.
  {
    BroadcastParams Params{2, {}};
    expectCheckerDifferential("broadcast/2", makeBroadcastIS(Params),
                              makeBroadcastInitialStore(Params));
  }
  {
    PingPongParams Params{2};
    expectCheckerDifferential("pingpong/2", makePingPongIS(Params),
                              makePingPongInitialStore(Params));
  }
  {
    ProducerConsumerParams Params{2};
    expectCheckerDifferential("prodcons/2", makeProducerConsumerIS(Params),
                              makeProducerConsumerInitialStore(Params));
  }
  {
    ChangRobertsParams Params{3, {2, 3, 1}};
    expectCheckerDifferential("changroberts/3",
                              makeChangRobertsOneShotIS(Params),
                              makeChangRobertsInitialStore(Params));
  }
  {
    NBuyerParams Params{2, 1, {0, 1}};
    expectCheckerDifferential("nbuyer/2", makeNBuyerOneShotIS(Params),
                              makeNBuyerInitialStore(Params));
  }
}

// --- Driver differentials over the shipped ASL examples -------------------

namespace {

std::string readExampleAsl(const std::string &Name) {
  std::ifstream In(std::string(ISQ_SOURCE_DIR) + "/examples/asl/" + Name);
  EXPECT_TRUE(In.good()) << "missing example file " << Name;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

std::vector<std::string> diagMessages(const driver::VerifyResult &R) {
  std::vector<std::string> Out;
  for (const asl::Diagnostic &D : R.Diags)
    Out.push_back(D.Message);
  return Out;
}

/// Runs \p Options with symmetry on and off at 1, 2 and 8 threads; every
/// run must produce the same verdict, per-condition outcome, diagnostics
/// and exit code.
void expectDriverDifferential(const std::string &Name,
                              driver::VerifyOptions Options) {
  Options.Engine.Symmetry = true;
  Options.Engine.NumThreads = 1;
  driver::VerifyResult Baseline = verifyModule(Options);
  EXPECT_TRUE(Baseline.Accepted) << Name << ":\n" << Baseline.Summary;
  for (bool Symmetry : {true, false}) {
    for (unsigned Threads : {1u, 2u, 8u}) {
      Options.Engine.Symmetry = Symmetry;
      Options.Engine.NumThreads = Threads;
      driver::VerifyResult R = verifyModule(Options);
      std::string Mode = Name + (Symmetry ? "/sym" : "/nosym") + "/t" +
                         std::to_string(Threads);
      EXPECT_EQ(R.Accepted, Baseline.Accepted) << Mode;
      EXPECT_EQ(R.exitCode(), Baseline.exitCode()) << Mode;
      EXPECT_EQ(diagMessages(R), diagMessages(Baseline)) << Mode;
      expectSameCondition(Mode, R.Report.SideConditions,
                          Baseline.Report.SideConditions);
      expectSameCondition(Mode, R.Report.AbstractionRefinement,
                          Baseline.Report.AbstractionRefinement);
      expectSameCondition(Mode, R.Report.BaseCase, Baseline.Report.BaseCase);
      expectSameCondition(Mode, R.Report.Conclusion,
                          Baseline.Report.Conclusion);
      expectSameCondition(Mode, R.Report.InductiveStep,
                          Baseline.Report.InductiveStep);
      expectSameCondition(Mode, R.Report.LeftMovers,
                          Baseline.Report.LeftMovers);
      expectSameCondition(Mode, R.Report.Cooperation,
                          Baseline.Report.Cooperation);
      EXPECT_EQ(R.CrossCheck.Ran, Baseline.CrossCheck.Ran) << Mode;
      EXPECT_EQ(R.CrossCheck.Refines.ok(), Baseline.CrossCheck.Refines.ok())
          << Mode;
      // Explored-state counts are observability, not verdict: the reduced
      // mode legitimately visits fewer P-side configurations (the checker
      // expands orbits internally). Within a mode they are thread-count
      // invariant; across modes reduced never exceeds unreduced.
      if (Symmetry) {
        EXPECT_EQ(R.CrossCheck.ConfigsP, Baseline.CrossCheck.ConfigsP) << Mode;
        EXPECT_EQ(R.CrossCheck.ConfigsPPrime,
                  Baseline.CrossCheck.ConfigsPPrime)
            << Mode;
      } else {
        EXPECT_GE(R.CrossCheck.ConfigsP, Baseline.CrossCheck.ConfigsP) << Mode;
      }
      // Only a symmetric module explored with symmetry on reduces.
      if (Symmetry) {
        EXPECT_EQ(R.Engine.SymmetryReduced, Baseline.Engine.SymmetryReduced)
            << Mode;
      } else {
        EXPECT_FALSE(R.Engine.SymmetryReduced) << Mode;
      }
    }
  }
}

} // namespace

TEST(SymmetryDriverTest, BroadcastExample) {
  driver::VerifyOptions Options;
  Options.Source = readExampleAsl("broadcast.asl");
  Options.Consts = {{"n", 2}};
  Options.Eliminate = {"Broadcast", "Collect"};
  Options.Abstractions = {{"Collect", "CollectAbs"}};
  expectDriverDifferential("broadcast.asl", Options);
}

TEST(SymmetryDriverTest, TwoPhaseCommitExample) {
  driver::VerifyOptions Options;
  Options.Source = readExampleAsl("two_phase_commit.asl");
  Options.Consts = {{"n", 2}};
  Options.Eliminate = {"RequestVotes", "Vote", "Decide", "Finalize"};
  Options.Abstractions = {{"Decide", "DecideAbs"}};
  Options.Weights = {{"RequestVotes", 8}, {"Decide", 4}};
  expectDriverDifferential("two_phase_commit.asl", Options);
}

TEST(SymmetryDriverTest, PaxosExample) {
  driver::VerifyOptions Options;
  Options.Source = readExampleAsl("paxos.asl");
  Options.Consts = {{"R", 2}, {"N", 2}};
  Options.Order = driver::VerifyOptions::RankOrder::ArgMajor;
  Options.Eliminate = {"StartRound", "Join", "Propose", "Vote", "Conclude"};
  Options.Abstractions = {{"Join", "JoinAbs"},
                          {"Propose", "ProposeAbs"},
                          {"Vote", "VoteAbs"},
                          {"Conclude", "ConcludeAbs"}};
  Options.Weights = {{"StartRound", 9}, {"Propose", 5}, {"Conclude", 2}};
  expectDriverDifferential("paxos.asl", Options);
}

TEST(SymmetryDriverTest, SymmetricModuleActuallyReduces) {
  driver::VerifyOptions Options;
  Options.Source = readExampleAsl("two_phase_commit.asl");
  // n=3 gives the permutation group order 6: the aggregate interned-config
  // count across the pipeline's explorations visibly shrinks.
  Options.Consts = {{"n", 3}};
  Options.Eliminate = {"RequestVotes", "Vote", "Decide", "Finalize"};
  Options.Abstractions = {{"Decide", "DecideAbs"}};
  Options.Weights = {{"RequestVotes", 8}, {"Decide", 4}};
  Options.Engine.Symmetry = true;
  driver::VerifyResult On = verifyModule(Options);
  Options.Engine.Symmetry = false;
  driver::VerifyResult Off = verifyModule(Options);
  ASSERT_TRUE(On.Accepted) << On.Summary;
  EXPECT_TRUE(On.Engine.SymmetryReduced);
  EXPECT_FALSE(Off.Engine.SymmetryReduced);
  // The aggregate interned counts are dominated by the P[M ↦ I] leg of the
  // universe (always unreduced — withAction clears the spec); the explored
  // node count is the reduction that shows through the whole pipeline.
  EXPECT_LT(On.Engine.NumConfigurations, Off.Engine.NumConfigurations);
  EXPECT_GT(On.Engine.CanonCalls, 0u);
  // Both modes stand for the same number of unreduced states.
  EXPECT_EQ(On.Engine.OrbitStatesRepresented, Off.Engine.OrbitStatesRepresented);
}
