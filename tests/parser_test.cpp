//===- tests/parser_test.cpp - ASL parser tests ------------------------------------===//

#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace isq::asl;

namespace {

Module parseOk(const std::string &Source) {
  std::vector<Diagnostic> Diags;
  auto M = parseModule(Source, Diags);
  EXPECT_TRUE(M.has_value()) << (Diags.empty() ? "" : Diags[0].str());
  return M ? std::move(*M) : Module();
}

void parseFails(const std::string &Source, const std::string &Fragment) {
  std::vector<Diagnostic> Diags;
  auto M = parseModule(Source, Diags);
  EXPECT_FALSE(M.has_value()) << "expected a parse error";
  bool Found = false;
  for (const Diagnostic &D : Diags)
    Found = Found || D.Message.find(Fragment) != std::string::npos;
  EXPECT_TRUE(Found) << "no diagnostic mentioning '" << Fragment << "'";
}

} // namespace

TEST(ParserTest, ConstVarAndActionDecls) {
  Module M = parseOk("const n: int;\n"
                     "var x: int := 0;\n"
                     "action Main() { skip; }\n");
  ASSERT_EQ(M.Consts.size(), 1u);
  EXPECT_EQ(M.Consts[0].Name, "n");
  ASSERT_EQ(M.Vars.size(), 1u);
  EXPECT_EQ(M.Vars[0].Name, "x");
  EXPECT_EQ(M.Vars[0].Type, TypeRef::intTy());
  ASSERT_EQ(M.Actions.size(), 1u);
  EXPECT_EQ(M.Actions[0].Name, "Main");
  EXPECT_TRUE(M.Actions[0].Params.empty());
  ASSERT_EQ(M.Actions[0].Body.size(), 1u);
  EXPECT_EQ(M.Actions[0].Body[0]->Kind, StmtKind::Skip);
}

TEST(ParserTest, NestedTypes) {
  Module M = parseOk(
      "var CH: map<int, bag<int>> := {};\n"
      "var d: map<int, option<int>> := {};\n"
      "var q: seq<int> := [];\n");
  EXPECT_EQ(M.Vars[0].Type,
            TypeRef::mapTy(TypeRef::intTy(),
                           TypeRef::bagTy(TypeRef::intTy())));
  EXPECT_EQ(M.Vars[1].Type,
            TypeRef::mapTy(TypeRef::intTy(),
                           TypeRef::optionTy(TypeRef::intTy())));
  EXPECT_EQ(M.Vars[2].Type, TypeRef::seqTy(TypeRef::intTy()));
}

TEST(ParserTest, OperatorPrecedence) {
  Module M = parseOk("action A(x: int) { assert x + 1 * 2 == 3 || false; }");
  const Stmt &S = *M.Actions[0].Body[0];
  // (  (x + (1*2)) == 3  ) || false
  const Expr &Or = *S.Exprs[0];
  ASSERT_EQ(Or.Kind, ExprKind::Binary);
  EXPECT_EQ(Or.Op, "||");
  const Expr &Eq = *Or.Children[0];
  EXPECT_EQ(Eq.Op, "==");
  const Expr &Plus = *Eq.Children[0];
  EXPECT_EQ(Plus.Op, "+");
  EXPECT_EQ(Plus.Children[1]->Op, "*");
}

TEST(ParserTest, StatementForms) {
  Module M = parseOk(
      "var x: map<int, int> := {};\n"
      "action A(i: int) {\n"
      "  x[i] := i + 1;\n"
      "  if x[i] == 2 { skip; } else { assert false; }\n"
      "  for j in 1 .. i { async A(j); }\n"
      "  await x[i] > 0;\n"
      "  choose y in keys(x);\n"
      "  x[y] := 0;\n"
      "}\n");
  const auto &Body = M.Actions[0].Body;
  ASSERT_EQ(Body.size(), 6u);
  EXPECT_EQ(Body[0]->Kind, StmtKind::Assign);
  EXPECT_EQ(Body[0]->Exprs.size(), 2u) << "one index plus the rhs";
  EXPECT_EQ(Body[1]->Kind, StmtKind::If);
  EXPECT_EQ(Body[1]->ElseBody.size(), 1u);
  EXPECT_EQ(Body[2]->Kind, StmtKind::For);
  EXPECT_EQ(Body[2]->Body[0]->Kind, StmtKind::Async);
  EXPECT_EQ(Body[3]->Kind, StmtKind::Await);
  EXPECT_EQ(Body[4]->Kind, StmtKind::Choose);
  EXPECT_EQ(Body[4]->Name, "y");
}

TEST(ParserTest, MapComprehension) {
  Module M = parseOk("const n: int;\n"
                     "var v: map<int, int> := map i in 1 .. n : i * i;\n");
  const Expr &Compr = *M.Vars[0].Init;
  ASSERT_EQ(Compr.Kind, ExprKind::MapCompr);
  EXPECT_EQ(Compr.Name, "i");
  EXPECT_EQ(Compr.Children.size(), 3u);
}

TEST(ParserTest, IndexChains) {
  Module M = parseOk("var m: map<int, map<int, int>> := {};\n"
                     "action A() { m[1][2] := 3; }\n");
  EXPECT_EQ(M.Actions[0].Body[0]->Exprs.size(), 3u)
      << "two indices plus the rhs";
}

TEST(ParserTest, SomeAndNone) {
  Module M = parseOk("var o: option<int> := none;\n"
                     "action A() { o := some(5); }\n");
  EXPECT_EQ(M.Vars[0].Init->Kind, ExprKind::NoneLit);
  EXPECT_EQ(M.Actions[0].Body[0]->Exprs[0]->Kind, ExprKind::SomeExpr);
}

TEST(ParserTest, MissingSemicolonDiagnosed) {
  parseFails("action A() { skip }", "';'");
}

TEST(ParserTest, MissingAssignInVarDecl) {
  parseFails("var x: int;", "initializer");
}

TEST(ParserTest, BadTypeDiagnosed) {
  // An identifier in type position parses as a named sort (the type
  // checker rejects undeclared names); only a non-identifier token is a
  // parse-level error.
  parseFails("var x: 3 := 0;", "expected a type");
}

TEST(ParserTest, SymmetricSortDecl) {
  Module M = parseOk("const n: int;\n"
                     "symmetric node: 1 .. n;\n"
                     "var owner: option<node> := none;\n"
                     "action Claim(who: node) { skip; }\n");
  ASSERT_EQ(M.Symmetrics.size(), 1u);
  EXPECT_EQ(M.Symmetrics[0].Name, "node");
  ASSERT_EQ(M.Vars.size(), 1u);
  // Structural equality ignores the sort annotation...
  EXPECT_EQ(M.Vars[0].Type, TypeRef::optionTy(TypeRef::intTy()));
  // ...but the annotation is retained for the symmetry spec.
  EXPECT_EQ(M.Vars[0].Type.Params[0].Sort, "node");
  ASSERT_EQ(M.Actions[0].Params.size(), 1u);
  EXPECT_EQ(M.Actions[0].Params[0].Type.Sort, "node");
}

TEST(ParserTest, SymmetricAsOrdinaryIdentifier) {
  // "symmetric" is only a keyword in declaration position.
  Module M = parseOk("var symmetric: int := 0;\n"
                     "action Main() { symmetric := 1; }\n");
  ASSERT_EQ(M.Vars.size(), 1u);
  EXPECT_EQ(M.Vars[0].Name, "symmetric");
}

TEST(ParserTest, NonIntConstRejected) {
  parseFails("const b: bool;", "constants must have type int");
}
