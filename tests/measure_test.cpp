//===- tests/measure_test.cpp - Well-founded measure tests --------------------------===//

#include "TestPrograms.h"
#include "is/Measure.h"

#include <gtest/gtest.h>

using namespace isq;
using namespace isq::testing;

namespace {

Configuration configWithPas(int64_t X, std::vector<PendingAsync> Pas) {
  return Configuration(xStore(X), PaMultiset::fromSequence(Pas));
}

} // namespace

TEST(MeasureTest, PendingAsyncCountDecreases) {
  Measure M = Measure::pendingAsyncCount();
  Configuration Two =
      configWithPas(0, {PendingAsync("A", {}), PendingAsync("B", {})});
  Configuration One = configWithPas(0, {PendingAsync("A", {})});
  Configuration Zero = configWithPas(0, {});
  EXPECT_TRUE(M.decreases(Two, One));
  EXPECT_TRUE(M.decreases(One, Zero));
  EXPECT_FALSE(M.decreases(One, Two));
  EXPECT_FALSE(M.decreases(One, One)) << "strict order";
}

TEST(MeasureTest, LexicographicComparison) {
  Measure M("pair", [](const Configuration &C) {
    int64_t X = C.isFailure() ? 0 : C.global().get("x").getInt();
    return std::vector<uint64_t>{static_cast<uint64_t>(X / 10),
                                 static_cast<uint64_t>(X % 10)};
  });
  // (2,1) > (1,9): first component dominates.
  EXPECT_TRUE(M.decreases(configWithPas(21, {}), configWithPas(19, {})));
  // (1,5) > (1,3): tie broken by the second.
  EXPECT_TRUE(M.decreases(configWithPas(15, {}), configWithPas(13, {})));
  EXPECT_FALSE(M.decreases(configWithPas(13, {}), configWithPas(15, {})));
}

TEST(MeasureTest, DifferentLengthTuplesZeroPad) {
  Measure A("long", [](const Configuration &) {
    return std::vector<uint64_t>{1, 0};
  });
  // Comparing against the evaluation of the same measure is the normal
  // case; here we exercise padding by comparing tuples {1,0} vs {1}.
  Measure B("short", [](const Configuration &C) {
    if (C.isFailure())
      return std::vector<uint64_t>{0};
    return C.global().get("x").getInt() == 0 ? std::vector<uint64_t>{1, 1}
                                             : std::vector<uint64_t>{1};
  });
  EXPECT_TRUE(B.decreases(configWithPas(0, {}), configWithPas(5, {})))
      << "{1,1} > {1} with zero padding";
  EXPECT_FALSE(B.decreases(configWithPas(5, {}), configWithPas(5, {})));
}

TEST(MeasureTest, ChannelsThenPas) {
  Symbol Chan = Symbol::get("chan");
  Measure M = Measure::channelsThenPas({Chan});
  auto WithChan = [&](std::vector<int64_t> Msgs,
                      std::vector<PendingAsync> Pas) {
    std::vector<Value> Elems;
    for (int64_t V : Msgs)
      Elems.push_back(Value::integer(V));
    Store S = Store::make({{Chan, Value::bag(Elems)}});
    return Configuration(S, PaMultiset::fromSequence(Pas));
  };
  // Fewer messages dominates, regardless of PA count.
  EXPECT_TRUE(M.decreases(WithChan({1, 2}, {}),
                          WithChan({1}, {PendingAsync("A", {})})));
  // Equal messages: PA count decides.
  EXPECT_TRUE(M.decreases(WithChan({1}, {PendingAsync("A", {})}),
                          WithChan({1}, {})));
  EXPECT_FALSE(M.decreases(WithChan({1}, {}), WithChan({1, 2}, {})));
}

TEST(MeasureTest, ChannelsThenPasSumsMapsOfChannels) {
  Symbol Chans = Symbol::get("CHS");
  Measure M = Measure::channelsThenPas({Chans});
  auto WithSizes = [&](std::vector<int64_t> Sizes) {
    std::vector<std::pair<Value, Value>> Pairs;
    for (size_t I = 0; I < Sizes.size(); ++I) {
      std::vector<Value> Msgs(static_cast<size_t>(Sizes[I]),
                              Value::integer(7));
      Pairs.push_back({Value::integer(static_cast<int64_t>(I)),
                       Value::bag(Msgs)});
    }
    return Configuration(Store::make({{Chans, Value::map(Pairs)}}),
                         PaMultiset());
  };
  EXPECT_TRUE(M.decreases(WithSizes({2, 1}), WithSizes({1, 1})));
  EXPECT_FALSE(M.decreases(WithSizes({1, 1}), WithSizes({2, 1})));
}

TEST(MeasureTest, InvalidMeasureDetectable) {
  Measure M;
  EXPECT_FALSE(M.isValid());
  EXPECT_TRUE(Measure::pendingAsyncCount().isValid());
  EXPECT_EQ(Measure::pendingAsyncCount().name(), "|Ω|");
}
