//===- tests/engine_test.cpp - Hash-consed engine tests ----------------------===//
//
// Tests for the interning arena (engine/StateArena.h) and the parallel
// frontier engine (engine/StateGraph.h): interning round-trips, determinism
// of parallel exploration across thread counts, differential equivalence
// with the legacy value-level BFS, and truncation reporting.
//
//===----------------------------------------------------------------------===//

#include "engine/ActionCaches.h"
#include "engine/StateArena.h"
#include "explorer/Explorer.h"
#include "protocols/Broadcast.h"
#include "protocols/PingPong.h"
#include "protocols/TwoPhaseCommit.h"

#include <gtest/gtest.h>

using namespace isq;
using namespace isq::engine;
using namespace isq::protocols;

namespace {

Store makeStore(std::initializer_list<std::pair<std::string, int64_t>> KVs) {
  Store S;
  for (const auto &[K, V] : KVs)
    S = S.set(Symbol::get(K), Value::integer(V));
  return S;
}

//===----------------------------------------------------------------------===//
// Interning round-trips
//===----------------------------------------------------------------------===//

TEST(StateArenaTest, StoreInterningRoundTrips) {
  StateArena Arena;
  Store A = makeStore({{"x", 1}, {"y", 2}});
  Store B = makeStore({{"y", 2}, {"x", 1}}); // same contents, other order
  Store C = makeStore({{"x", 1}, {"y", 3}});

  StoreId IdA = Arena.internStore(A);
  StoreId IdB = Arena.internStore(B);
  StoreId IdC = Arena.internStore(C);

  EXPECT_EQ(IdA, IdB) << "equal stores must intern to the same handle";
  EXPECT_NE(IdA, IdC);
  EXPECT_EQ(Arena.store(IdA), A);
  EXPECT_EQ(Arena.store(IdC), C);
}

TEST(StateArenaTest, PendingAsyncInterningRoundTrips) {
  StateArena Arena;
  PendingAsync P1(Symbol::get("Ping"), {Value::integer(1)});
  PendingAsync P2(Symbol::get("Ping"), {Value::integer(2)});

  PaId Id1 = Arena.internPa(P1);
  PaId Id1Again = Arena.internPa(PendingAsync(Symbol::get("Ping"),
                                              {Value::integer(1)}));
  PaId Id2 = Arena.internPa(P2);

  EXPECT_EQ(Id1, Id1Again);
  EXPECT_NE(Id1, Id2);
  EXPECT_EQ(Arena.pa(Id1), P1);
  EXPECT_EQ(Arena.pa(Id2), P2);
}

TEST(StateArenaTest, PaSetInterningRoundTrips) {
  StateArena Arena;
  PendingAsync P1(Symbol::get("A"), {Value::integer(1)});
  PendingAsync P2(Symbol::get("B"), {});
  PaMultiset Omega;
  Omega.insert(P1);
  Omega.insert(P1);
  Omega.insert(P2);

  PaSetId Id = Arena.internPaSet(Omega);
  PaSetId IdAgain = Arena.internPaSet(Omega);
  EXPECT_EQ(Id, IdAgain);
  EXPECT_NE(Id, Arena.emptyPaSet());

  // Round-trip through the value form.
  EXPECT_EQ(Arena.paSet(Id), Omega);

  // The engine form is sorted by PaId with summed multiplicities.
  const PaCountVec &Vec = Arena.paVec(Id);
  ASSERT_EQ(Vec.size(), 2u);
  EXPECT_TRUE(Vec[0].first < Vec[1].first);
  uint64_t Total = 0;
  for (const auto &[Pa, Count] : Vec) {
    (void)Pa;
    Total += Count;
  }
  EXPECT_EQ(Total, 3u);
}

TEST(StateArenaTest, ConfigInterningRoundTrips) {
  StateArena Arena;
  Store G = makeStore({{"x", 7}});
  PaMultiset Omega;
  Omega.insert(PendingAsync(Symbol::get("A"), {}));
  Configuration C(G, Omega);

  ConfigId Id = Arena.internConfig(C);
  ConfigId IdAgain =
      Arena.internConfig(Arena.internStore(G), Arena.internPaSet(Omega));
  EXPECT_EQ(Id, IdAgain);
  EXPECT_EQ(Arena.configuration(Id), C);

  auto [StoreHandle, OmegaHandle] = Arena.config(Id);
  EXPECT_EQ(Arena.store(StoreHandle), G);
  EXPECT_EQ(Arena.paSet(OmegaHandle), Omega);
}

TEST(StateArenaTest, HashConsHitsAreCounted) {
  StateArena Arena;
  Store G = makeStore({{"x", 1}});
  Arena.internStore(G);
  size_t Before = Arena.stats().Hits;
  Arena.internStore(G);
  ArenaStats Stats = Arena.stats();
  EXPECT_EQ(Stats.Hits, Before + 1);
  EXPECT_EQ(Stats.Stores, 1u);
  EXPECT_GE(Stats.Lookups, 2u);
}

TEST(OmegaGateCacheTest, CountsLookupsAndHits) {
  StateArena Arena;
  // An Ω-observing gate: enabled while anything is still pending. Counting
  // its evaluations pins the memoization: each distinct (store, args, Ω)
  // point runs the gate once; repeats are hits.
  size_t Evals = 0;
  Action A(
      "Guard", 0,
      [&Evals](const GateContext &Ctx) {
        ++Evals;
        return Ctx.Omega.size() > 0;
      },
      [](const Store &, const std::vector<Value> &) {
        return std::vector<Transition>{};
      },
      /*GateReadsOmega=*/true);

  StoreId G = Arena.internStore(makeStore({{"x", 1}}));
  PaId Args = Arena.internPa(PendingAsync(Symbol::get("Guard"), {}));
  PaMultiset Pending;
  Pending.insert(PendingAsync(Symbol::get("Guard"), {}));
  PaSetId NonEmpty = Arena.internPaSet(Pending);
  PaSetId Empty = Arena.emptyPaSet();

  OmegaGateCache Cache(Arena);
  EXPECT_EQ(Cache.lookups(), 0u);
  EXPECT_EQ(Cache.hits(), 0u);

  EXPECT_TRUE(Cache.get(A, G, Args, NonEmpty));   // miss
  EXPECT_FALSE(Cache.get(A, G, Args, Empty));     // distinct Ω: miss
  EXPECT_EQ(Cache.lookups(), 2u);
  EXPECT_EQ(Cache.hits(), 0u);
  EXPECT_EQ(Evals, 2u);

  EXPECT_TRUE(Cache.get(A, G, Args, NonEmpty));   // hit
  EXPECT_FALSE(Cache.get(A, G, Args, Empty));     // hit
  EXPECT_TRUE(Cache.get(A, G, Args, NonEmpty));   // hit
  EXPECT_EQ(Cache.lookups(), 5u);
  EXPECT_EQ(Cache.hits(), 3u);
  EXPECT_EQ(Evals, 2u) << "hits must not re-run the gate";

  // A different store misses again under the same Ω.
  StoreId G2 = Arena.internStore(makeStore({{"x", 2}}));
  EXPECT_TRUE(Cache.get(A, G2, Args, NonEmpty));
  EXPECT_EQ(Cache.lookups(), 6u);
  EXPECT_EQ(Cache.hits(), 3u);
  EXPECT_EQ(Evals, 3u);
}

TEST(StateArenaTest, PaCountVecOperations) {
  StateArena Arena;
  PaId A = Arena.internPa(PendingAsync(Symbol::get("A"), {}));
  PaId B = Arena.internPa(PendingAsync(Symbol::get("B"), {}));
  PaId Lo = std::min(A, B), Hi = std::max(A, B);

  PaCountVec X{{Lo, 2}, {Hi, 1}};
  PaCountVec Y{{Hi, 3}};
  PaCountVec U = paCountVecUnion(X, Y);
  ASSERT_EQ(U.size(), 2u);
  EXPECT_EQ(U[0], (std::pair<PaId, uint64_t>{Lo, 2}));
  EXPECT_EQ(U[1], (std::pair<PaId, uint64_t>{Hi, 4}));

  paCountVecErase(X, Lo);
  ASSERT_EQ(X.size(), 2u);
  EXPECT_EQ(X[0].second, 1u);
  paCountVecErase(X, Lo); // multiplicity drops to zero: entry removed
  ASSERT_EQ(X.size(), 1u);
  EXPECT_EQ(X[0].first, Hi);
}

//===----------------------------------------------------------------------===//
// Parallel determinism
//===----------------------------------------------------------------------===//

struct Instance {
  std::string Name;
  Program P;
  Store Init;
};

std::vector<Instance> tier1Instances() {
  std::vector<Instance> Out;
  PingPongParams PP{3};
  Out.push_back({"pingpong", makePingPongProgram(PP),
                 makePingPongInitialStore(PP)});
  BroadcastParams BC{3, {}};
  Out.push_back({"broadcast", makeBroadcastProgram(BC),
                 makeBroadcastInitialStore(BC)});
  TwoPhaseCommitParams TP{3};
  Out.push_back({"2pc", makeTwoPhaseCommitProgram(TP),
                 makeTwoPhaseCommitInitialStore(TP)});
  return Out;
}

void expectIdentical(const ExploreResult &A, const ExploreResult &B,
                     const std::string &Context) {
  EXPECT_EQ(A.Reachable, B.Reachable) << Context;
  EXPECT_EQ(A.FailureReachable, B.FailureReachable) << Context;
  EXPECT_EQ(A.TerminalStores, B.TerminalStores) << Context;
  EXPECT_EQ(A.Deadlocks, B.Deadlocks) << Context;
  EXPECT_EQ(A.Stats.NumConfigurations, B.Stats.NumConfigurations) << Context;
  EXPECT_EQ(A.Stats.NumTransitions, B.Stats.NumTransitions) << Context;
  EXPECT_EQ(A.Stats.Truncated, B.Stats.Truncated) << Context;
  ASSERT_EQ(A.FailureTrace.has_value(), B.FailureTrace.has_value()) << Context;
  if (A.FailureTrace) {
    EXPECT_EQ(A.FailureTrace->length(), B.FailureTrace->length()) << Context;
    EXPECT_EQ(A.FailureTrace->scheduleStr(), B.FailureTrace->scheduleStr())
        << Context;
  }
}

TEST(ParallelExploreTest, ThreadCountDoesNotChangeResults) {
  for (const Instance &I : tier1Instances()) {
    ExploreOptions Serial;
    Serial.Config.NumThreads = 1;
    ExploreResult Base = explore(I.P, initialConfiguration(I.Init), Serial);
    EXPECT_GT(Base.Stats.NumConfigurations, 1u) << I.Name;

    for (unsigned Threads : {2u, 8u}) {
      ExploreOptions Par;
      Par.Config.NumThreads = Threads;
      ExploreResult R = explore(I.P, initialConfiguration(I.Init), Par);
      EXPECT_EQ(R.Engine.Threads, Threads) << I.Name;
      expectIdentical(Base, R,
                      I.Name + " with " + std::to_string(Threads) +
                          " threads");
    }
  }
}

TEST(ParallelExploreTest, FailureTracesIdenticalAcrossThreadCounts) {
  PingPongParams PP{3};
  Program Buggy = makeBuggyPingPongProgram(PP);
  Configuration Init = initialConfiguration(makePingPongInitialStore(PP));

  ExploreOptions Serial;
  ExploreResult Base = explore(Buggy, Init, Serial);
  ASSERT_TRUE(Base.FailureReachable);
  ASSERT_TRUE(Base.FailureTrace.has_value());

  for (unsigned Threads : {2u, 8u}) {
    ExploreOptions Par;
    Par.Config.NumThreads = Threads;
    ExploreResult R = explore(Buggy, Init, Par);
    expectIdentical(Base, R,
                    "buggy pingpong with " + std::to_string(Threads) +
                        " threads");
  }
}

//===----------------------------------------------------------------------===//
// Differential testing against the legacy value-level BFS
//===----------------------------------------------------------------------===//

TEST(EngineDifferentialTest, MatchesLegacyExplorer) {
  for (const Instance &I : tier1Instances()) {
    std::vector<Configuration> Inits{initialConfiguration(I.Init)};
    ExploreResult Legacy = exploreAllLegacy(I.P, Inits);
    // The legacy explorer is always unreduced; compare like with like
    // (symmetry-vs-unreduced differentials live in symmetry_test.cpp).
    ExploreOptions Unreduced;
    Unreduced.Config.Symmetry = false;
    ExploreResult Engine = exploreAll(I.P, Inits, Unreduced);
    EXPECT_EQ(Engine.Reachable, Legacy.Reachable) << I.Name;
    EXPECT_EQ(Engine.FailureReachable, Legacy.FailureReachable) << I.Name;
    EXPECT_EQ(Engine.TerminalStores, Legacy.TerminalStores) << I.Name;
    EXPECT_EQ(Engine.Deadlocks, Legacy.Deadlocks) << I.Name;
    EXPECT_EQ(Engine.Stats.NumConfigurations,
              Legacy.Stats.NumConfigurations)
        << I.Name;
    EXPECT_EQ(Engine.Stats.NumTransitions, Legacy.Stats.NumTransitions)
        << I.Name;
  }
}

//===----------------------------------------------------------------------===//
// Work-stealing mode
//===----------------------------------------------------------------------===//

TEST(WorkStealingTest, BitIdenticalAcrossThreadCounts) {
  for (const Instance &I : tier1Instances()) {
    ExploreOptions One;
    One.Config.WorkStealing = true;
    One.Config.NumThreads = 1;
    ExploreResult Base = explore(I.P, initialConfiguration(I.Init), One);
    EXPECT_TRUE(Base.Engine.WorkStealing) << I.Name;

    for (unsigned Threads : {2u, 8u}) {
      ExploreOptions Par;
      Par.Config.WorkStealing = true;
      Par.Config.NumThreads = Threads;
      ExploreResult R = explore(I.P, initialConfiguration(I.Init), Par);
      expectIdentical(Base, R,
                      I.Name + " work-stealing with " +
                          std::to_string(Threads) + " threads");
      // Interning and canonicalization counters are part of the
      // determinism contract too (only timings and steals may vary).
      EXPECT_EQ(Base.Engine.InternedStores, R.Engine.InternedStores)
          << I.Name;
      EXPECT_EQ(Base.Engine.InternedConfigs, R.Engine.InternedConfigs)
          << I.Name;
      EXPECT_EQ(Base.Engine.FrontierPeak, R.Engine.FrontierPeak) << I.Name;
    }
  }
}

TEST(WorkStealingTest, MatchesLevelSyncOracle) {
  for (const Instance &I : tier1Instances()) {
    for (unsigned Threads : {1u, 4u}) {
      ExploreOptions Ls;
      Ls.Config.WorkStealing = false;
      Ls.Config.NumThreads = Threads;
      ExploreResult Oracle = explore(I.P, initialConfiguration(I.Init), Ls);
      EXPECT_FALSE(Oracle.Engine.WorkStealing) << I.Name;

      ExploreOptions Ws;
      Ws.Config.WorkStealing = true;
      Ws.Config.NumThreads = Threads;
      ExploreResult R = explore(I.P, initialConfiguration(I.Init), Ws);
      expectIdentical(Oracle, R,
                      I.Name + " ws-vs-level-sync at " +
                          std::to_string(Threads) + " threads");
      EXPECT_EQ(Oracle.Engine.InternedConfigs, R.Engine.InternedConfigs)
          << I.Name;
      EXPECT_EQ(Oracle.Engine.FrontierPeak, R.Engine.FrontierPeak) << I.Name;
    }
  }
}

TEST(WorkStealingTest, SmallChunksStealAndStayDeterministic) {
  BroadcastParams BC{3, {}};
  Program P = makeBroadcastProgram(BC);
  Configuration Init = initialConfiguration(makeBroadcastInitialStore(BC));

  ExploreOptions Base;
  Base.Config.NumThreads = 1;
  ExploreResult Expect = explore(P, Init, Base);

  // chunk=1 maximizes scheduling freedom — the strongest determinism
  // stress — and makes steals essentially certain with 4 threads.
  ExploreOptions Tiny;
  Tiny.Config.NumThreads = 4;
  Tiny.Config.StealChunk = 1;
  ExploreResult R = explore(P, Init, Tiny);
  expectIdentical(Expect, R, "broadcast steal-chunk=1");
  EXPECT_EQ(R.Engine.StealChunk, 1u);
}

TEST(WorkStealingTest, FailuresHandledWithoutStop) {
  PingPongParams PP{3};
  Program Buggy = makeBuggyPingPongProgram(PP);
  Configuration Init = initialConfiguration(makePingPongInitialStore(PP));

  ExploreOptions Serial;
  Serial.Config.WorkStealing = false;
  ExploreResult Oracle = explore(Buggy, Init, Serial);
  ASSERT_TRUE(Oracle.FailureReachable);

  ExploreOptions Ws;
  Ws.Config.WorkStealing = true;
  Ws.Config.NumThreads = 4;
  ExploreResult R = explore(Buggy, Init, Ws);
  expectIdentical(Oracle, R, "buggy pingpong under work stealing");
}

//===----------------------------------------------------------------------===//
// Compact state store
//===----------------------------------------------------------------------===//

TEST(CompactStoreTest, CompressedArenaRoundTrips) {
  StateArena Arena(/*Shards=*/4, /*Compress=*/true);
  EXPECT_EQ(Arena.shards(), 4u);
  EXPECT_TRUE(Arena.compressed());

  Store A = makeStore({{"x", 1}, {"y", 2}});
  Store B = makeStore({{"y", 2}, {"x", 1}});
  StoreId IdA = Arena.internStore(A);
  EXPECT_EQ(IdA, Arena.internStore(B));
  EXPECT_EQ(Arena.store(IdA), A);

  PaMultiset Omega;
  Omega.insert(PendingAsync(Symbol::get("A"), {Value::integer(1)}));
  Omega.insert(PendingAsync(Symbol::get("A"), {Value::integer(1)}));
  Omega.insert(PendingAsync(Symbol::get("B"), {}));
  PaSetId Id = Arena.internPaSet(Omega);
  EXPECT_EQ(Id, Arena.internPaSet(Omega));
  EXPECT_EQ(Arena.paSet(Id), Omega);
  EXPECT_EQ(Arena.paVec(Id).size(), 2u);

  ArenaStats Stats = Arena.stats();
  EXPECT_GT(Stats.CompressedBytes, 0u);
  EXPECT_EQ(Stats.Shards, 4u);
  EXPECT_GE(Stats.ShardOccupancy, 0u);
}

TEST(CompactStoreTest, CompressionDoesNotChangeResults) {
  for (const Instance &I : tier1Instances()) {
    ExploreOptions Plain;
    Plain.Config.NumThreads = 4;
    ExploreResult Base = explore(I.P, initialConfiguration(I.Init), Plain);
    EXPECT_EQ(Base.Engine.CompressedBytes, 0u) << I.Name;

    ExploreOptions Compressed;
    Compressed.Config.NumThreads = 4;
    Compressed.Config.Compress = true;
    ExploreResult R = explore(I.P, initialConfiguration(I.Init), Compressed);
    expectIdentical(Base, R, I.Name + " compressed");
    EXPECT_EQ(Base.Engine.InternedStores, R.Engine.InternedStores) << I.Name;
    EXPECT_GT(R.Engine.CompressedBytes, 0u) << I.Name;
  }
}

TEST(CompactStoreTest, ShardCountIsObservableAndDeterministic) {
  BroadcastParams BC{3, {}};
  Program P = makeBroadcastProgram(BC);
  Configuration Init = initialConfiguration(makeBroadcastInitialStore(BC));

  ExploreOptions Opts;
  Opts.Config.Shards = 8;
  ExploreResult First = explore(P, Init, Opts);
  EXPECT_EQ(First.Engine.Shards, 8u);
  EXPECT_GT(First.Engine.ShardOccupancy, 0u);
  EXPECT_LE(First.Engine.ShardOccupancy, 8u);

  // Occupancy is a pure function of the reached value set, so it must not
  // wobble across thread counts.
  Opts.Config.NumThreads = 4;
  ExploreResult Second = explore(P, Init, Opts);
  EXPECT_EQ(First.Engine.ShardOccupancy, Second.Engine.ShardOccupancy);

  // Fewer shards must not change anything but the occupancy bound.
  ExploreOptions One;
  One.Config.Shards = 1;
  ExploreResult Single = explore(P, Init, One);
  expectIdentical(First, Single, "broadcast shards=1");
  EXPECT_EQ(Single.Engine.ShardOccupancy, 1u);
}

//===----------------------------------------------------------------------===//
// Truncation
//===----------------------------------------------------------------------===//

TEST(EngineTruncationTest, MaxConfigurationsSetsTruncatedFlag) {
  BroadcastParams BC{3, {}};
  Program P = makeBroadcastProgram(BC);
  Configuration Init = initialConfiguration(makeBroadcastInitialStore(BC));

  ExploreOptions Full;
  ExploreResult Complete = explore(P, Init, Full);
  ASSERT_FALSE(Complete.Stats.Truncated);
  ASSERT_GT(Complete.Stats.NumConfigurations, 4u);

  for (unsigned Threads : {1u, 4u}) {
    ExploreOptions Opts;
    Opts.MaxConfigurations = 4;
    Opts.Config.NumThreads = Threads;
    ExploreResult R = explore(P, Init, Opts);
    EXPECT_TRUE(R.Stats.Truncated)
        << Threads << " threads: cap must report truncation";
    EXPECT_LE(R.Stats.NumConfigurations, 4u) << Threads << " threads";
  }
}

TEST(EngineTruncationTest, CompleteExplorationIsNotTruncated) {
  PingPongParams PP{2};
  Program P = makePingPongProgram(PP);
  ExploreResult R = explore(P, initialConfiguration(makePingPongInitialStore(PP)));
  EXPECT_FALSE(R.Stats.Truncated);
}

//===----------------------------------------------------------------------===//
// Engine observability
//===----------------------------------------------------------------------===//

TEST(EngineStatsTest, StatsArePopulated) {
  BroadcastParams BC{3, {}};
  Program P = makeBroadcastProgram(BC);
  ExploreResult R =
      explore(P, initialConfiguration(makeBroadcastInitialStore(BC)));

  EXPECT_EQ(R.Engine.NumConfigurations, R.Stats.NumConfigurations);
  EXPECT_GT(R.Engine.InternedStores, 0u);
  EXPECT_GT(R.Engine.InternedPaSets, 0u);
  EXPECT_GT(R.Engine.FrontierPeak, 0u);
  EXPECT_EQ(R.Engine.Threads, 1u);
  EXPECT_GT(R.Engine.hashConsHitRate(), 0.0);
  std::string S = R.Engine.str();
  EXPECT_NE(S.find("configs="), std::string::npos);
  EXPECT_NE(S.find("hashcons-hit="), std::string::npos);
}

} // namespace
