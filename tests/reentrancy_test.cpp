//===- tests/reentrancy_test.cpp - VerifyDriver re-entrancy -------------------------===//
///
/// \file
/// The engine re-entrancy contract behind isq-serve (DESIGN.md "Serve
/// subsystem"): multiple VerifyDriver jobs may run concurrently in one
/// process, and each produces a verdict bit-identical (modulo timing
/// fields) to the same job run serially. The only process-global mutable
/// state reachable from verifyModule is the interned Symbol table, which
/// is mutex-protected and append-only; this test is the executable check
/// of that audit and runs under TSan in CI (tools/ci.sh).
///
//===----------------------------------------------------------------------===//

#include "driver/ReportRender.h"
#include "driver/VerifyDriver.h"

#include <gtest/gtest.h>

#include <fstream>
#include <regex>
#include <sstream>
#include <thread>

using namespace isq;

namespace {

std::string readExampleAsl(const std::string &Name) {
  std::ifstream In(std::string(ISQ_SOURCE_DIR) + "/examples/asl/" + Name);
  EXPECT_TRUE(In.good()) << "missing example file " << Name;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

/// Blanks the wall-clock fields — and the steal count, which is
/// schedule-dependent when the engine runs threaded (tools/ci.sh scrubs
/// it in the engine differential for the same reason) — so runs compare
/// bit-identically.
std::string scrubTimings(const std::string &Json) {
  static const std::regex Seconds("(\"[a-z_]*seconds\":)[0-9.]+");
  std::string Out = std::regex_replace(Json, Seconds, "$010");
  static const std::regex Steals("(\"steals\":)[0-9]+");
  return std::regex_replace(Out, Steals, "$010");
}

/// Two *different* jobs — distinct modules, ranks, abstractions — so the
/// concurrent runs exercise disjoint proof pipelines, not one shared
/// computation. Instances are small: the point is interleaving under
/// TSan, not state-space depth.
driver::VerifyOptions pingPongJob() {
  driver::VerifyOptions O;
  O.Source = readExampleAsl("ping_pong.asl");
  O.Consts["T"] = 2;
  O.Eliminate = {"Ping", "Pong"};
  O.Abstractions = {{"Ping", "PingAbs"}, {"Pong", "PongAbs"}};
  O.Order = driver::VerifyOptions::RankOrder::ArgMajor;
  return O;
}

driver::VerifyOptions broadcastJob() {
  driver::VerifyOptions O;
  O.Source = readExampleAsl("broadcast.asl");
  O.Consts["n"] = 2;
  O.Eliminate = {"Broadcast", "Collect"};
  O.Abstractions = {{"Collect", "CollectAbs"}};
  return O;
}

std::string scrubbedVerdict(const driver::VerifyOptions &O) {
  return scrubTimings(driver::renderJson(driver::verifyModule(O)));
}

} // namespace

TEST(ReentrancyTest, ConcurrentJobsMatchSerialVerdicts) {
  driver::VerifyOptions JobA = pingPongJob();
  driver::VerifyOptions JobB = broadcastJob();

  // Serial baselines first.
  std::string SerialA = scrubbedVerdict(JobA);
  std::string SerialB = scrubbedVerdict(JobB);
  ASSERT_NE(SerialA.find("\"accepted\":true"), std::string::npos);
  ASSERT_NE(SerialB.find("\"accepted\":true"), std::string::npos);

  // Now both jobs at once, twice each, from four threads.
  constexpr int Rounds = 2;
  std::vector<std::string> ConcurrentA(Rounds), ConcurrentB(Rounds);
  std::vector<std::thread> Threads;
  for (int I = 0; I < Rounds; ++I) {
    Threads.emplace_back(
        [&, I] { ConcurrentA[I] = scrubbedVerdict(JobA); });
    Threads.emplace_back(
        [&, I] { ConcurrentB[I] = scrubbedVerdict(JobB); });
  }
  for (std::thread &T : Threads)
    T.join();

  for (int I = 0; I < Rounds; ++I) {
    EXPECT_EQ(ConcurrentA[I], SerialA)
        << "concurrent ping-pong verdict diverged from serial run " << I;
    EXPECT_EQ(ConcurrentB[I], SerialB)
        << "concurrent broadcast verdict diverged from serial run " << I;
  }
}

TEST(ReentrancyTest, ConcurrentMultiThreadedJobsMatch) {
  // Re-entrancy composed with internal parallelism: each concurrent job
  // itself runs the engine and scheduler with two threads.
  driver::VerifyOptions JobA = pingPongJob();
  driver::VerifyOptions JobB = broadcastJob();
  JobA.Engine.NumThreads = 2;
  JobB.Engine.NumThreads = 2;

  std::string SerialA = scrubbedVerdict(JobA);
  std::string SerialB = scrubbedVerdict(JobB);

  std::string ConcurrentA, ConcurrentB;
  std::thread TA([&] { ConcurrentA = scrubbedVerdict(JobA); });
  std::thread TB([&] { ConcurrentB = scrubbedVerdict(JobB); });
  TA.join();
  TB.join();

  EXPECT_EQ(ConcurrentA, SerialA);
  EXPECT_EQ(ConcurrentB, SerialB);
}

TEST(ReentrancyTest, ConcurrentCompileErrorsIsolated) {
  // A failing compile in one thread must not perturb a clean run in
  // another (diagnostics are per-result, not global).
  driver::VerifyOptions Good = pingPongJob();
  driver::VerifyOptions Bad;
  Bad.Source = "action ( nonsense";
  Bad.Eliminate = {"A"};

  std::string SerialGood = scrubbedVerdict(Good);

  std::string ConcurrentGood;
  driver::VerifyResult BadResult;
  std::thread TG([&] { ConcurrentGood = scrubbedVerdict(Good); });
  std::thread TB([&] { BadResult = driver::verifyModule(Bad); });
  TG.join();
  TB.join();

  EXPECT_EQ(ConcurrentGood, SerialGood);
  EXPECT_FALSE(BadResult.CompileOk);
  EXPECT_EQ(BadResult.exitCode(), 2);
  EXPECT_FALSE(BadResult.Diags.empty());
}
