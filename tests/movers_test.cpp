//===- tests/movers_test.cpp - Mover engine unit tests --------------------------===//

#include "TestPrograms.h"
#include "movers/MoverCheck.h"

#include <gtest/gtest.h>

using namespace isq;
using namespace isq::testing;

namespace {

/// Store {q = bag, x = int}.
Store bagStore(std::vector<int64_t> Msgs, int64_t X) {
  std::vector<Value> Elems;
  for (int64_t M : Msgs)
    Elems.push_back(iv(M));
  return Store::make({{Symbol::get("q"), Value::bag(Elems)},
                      {Symbol::get("x"), iv(X)}});
}

/// Send(v): q += v. A left mover over bag channels.
Action makeSend() {
  return Action("Send", 1, Action::alwaysEnabled(),
                [](const Store &G, const std::vector<Value> &Args) {
                  return std::vector<Transition>{Transition(
                      G.set("q", G.get("q").bagInsert(Args[0])))};
                });
}

/// Recv(): removes any one message (blocking when empty). A right mover.
Action makeRecv() {
  return Action("Recv", 0, Action::alwaysEnabled(),
                [](const Store &G, const std::vector<Value> &) {
                  std::vector<Transition> Out;
                  const Value &Q = G.get("q");
                  for (const auto &[Msg, Count] : Q.bagEntries()) {
                    (void)Count;
                    Out.emplace_back(G.set("q", Q.bagErase(Msg)));
                  }
                  return Out;
                });
}

/// IncX(): x := x + 1. Commutes with itself but writes shared state.
Action makeIncX() {
  return Action("IncX", 0, Action::alwaysEnabled(),
                [](const Store &G, const std::vector<Value> &) {
                  return std::vector<Transition>{Transition(
                      G.set("x", iv(G.get("x").getInt() + 1)))};
                });
}

/// DoubleX(): x := 2x. Does not commute with IncX.
Action makeDoubleX() {
  return Action("DoubleX", 0, Action::alwaysEnabled(),
                [](const Store &G, const std::vector<Value> &) {
                  return std::vector<Transition>{Transition(
                      G.set("x", iv(G.get("x").getInt() * 2)))};
                });
}

/// A program and universe where one Send(7), one Recv, one IncX and one
/// DoubleX are co-pending over a few stores.
struct Fixture {
  Program P;
  std::vector<Configuration> Universe;

  Fixture() {
    P.addAction(Action("Main", 0, Action::alwaysEnabled(),
                       [](const Store &G, const std::vector<Value> &) {
                         return std::vector<Transition>{Transition(G)};
                       }));
    P.addAction(makeSend());
    P.addAction(makeRecv());
    P.addAction(makeIncX());
    P.addAction(makeDoubleX());
    PaMultiset Omega;
    Omega.insert(PendingAsync("Send", {iv(7)}));
    Omega.insert(PendingAsync("Recv", {}));
    Omega.insert(PendingAsync("IncX", {}));
    Omega.insert(PendingAsync("DoubleX", {}));
    Universe.emplace_back(bagStore({1, 2}, 1), Omega);
    Universe.emplace_back(bagStore({}, 3), Omega);
    Universe.emplace_back(bagStore({5}, 0), Omega);
  }
};

} // namespace

TEST(MoverTest, SendIsLeftMoverOverBags) {
  Fixture F;
  CheckResult R =
      checkLeftMover(Symbol::get("Send"), F.P.action("Send"), F.P,
                     F.Universe);
  EXPECT_TRUE(R.ok()) << R.str();
}

TEST(MoverTest, RecvIsRightMoverOverBags) {
  Fixture F;
  CheckResult R =
      checkRightMover(Symbol::get("Recv"), F.P.action("Recv"), F.P,
                      F.Universe);
  EXPECT_TRUE(R.ok()) << R.str();
}

TEST(MoverTest, RecvIsNotLeftMoverBlocking) {
  // Recv violates non-blocking on the empty-channel configuration.
  Fixture F;
  CheckResult R =
      checkLeftMover(Symbol::get("Recv"), F.P.action("Recv"), F.P,
                     F.Universe);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.str().find("non-blocking"), std::string::npos) << R.str();
}

TEST(MoverTest, SendIsNotRightMoverPastRecv) {
  // Send;Recv can consume the sent message — reordering to Recv;Send
  // cannot reproduce the outcome when the channel was empty.
  Fixture F;
  CheckResult R =
      checkRightMover(Symbol::get("Send"), F.P.action("Send"), F.P,
                      F.Universe);
  EXPECT_FALSE(R.ok());
}

TEST(MoverTest, NonCommutingActionsDetected) {
  Fixture F;
  CheckResult R =
      checkLeftMover(Symbol::get("DoubleX"), F.P.action("DoubleX"), F.P,
                     F.Universe);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.str().find("commute"), std::string::npos) << R.str();
}

TEST(MoverTest, ClassifyMover) {
  Fixture F;
  EXPECT_EQ(classifyMover(Symbol::get("Send"), F.P, F.Universe),
            MoverType::Left);
  EXPECT_EQ(classifyMover(Symbol::get("Recv"), F.P, F.Universe),
            MoverType::Right);
  EXPECT_EQ(classifyMover(Symbol::get("DoubleX"), F.P, F.Universe),
            MoverType::None);
}

TEST(MoverTest, PureLocalActionIsBothMover) {
  // A single IncX against Send/Recv (which touch only q) is a both mover
  // when no second IncX/DoubleX is pending.
  Program P;
  P.addAction(Action("Main", 0, Action::alwaysEnabled(),
                     [](const Store &G, const std::vector<Value> &) {
                       return std::vector<Transition>{Transition(G)};
                     }));
  P.addAction(makeSend());
  P.addAction(makeIncX());
  PaMultiset Omega;
  Omega.insert(PendingAsync("Send", {iv(7)}));
  Omega.insert(PendingAsync("IncX", {}));
  std::vector<Configuration> U{Configuration(bagStore({1}, 0), Omega)};
  EXPECT_EQ(classifyMover(Symbol::get("IncX"), P, U), MoverType::Both);
}

TEST(MoverTest, GatePreservationViolationDetected) {
  // Guarded's gate (x == 0) is destroyed by IncX: forward preservation
  // fails when checking Guarded as a left mover.
  Program P;
  P.addAction(Action("Main", 0, Action::alwaysEnabled(),
                     [](const Store &G, const std::vector<Value> &) {
                       return std::vector<Transition>{Transition(G)};
                     }));
  P.addAction(Action("Guarded", 0,
                     [](const GateContext &Ctx) {
                       return Ctx.Global.get("x").getInt() == 0;
                     },
                     [](const Store &G, const std::vector<Value> &) {
                       return std::vector<Transition>{Transition(G)};
                     }));
  P.addAction(makeIncX());
  PaMultiset Omega;
  Omega.insert(PendingAsync("Guarded", {}));
  Omega.insert(PendingAsync("IncX", {}));
  std::vector<Configuration> U{Configuration(bagStore({}, 0), Omega)};
  CheckResult R =
      checkLeftMover(Symbol::get("Guarded"), P.action("Guarded"), P, U);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.str().find("forward-preserved"), std::string::npos)
      << R.str();
}

TEST(MoverTest, DuplicatePasPairOnlyWithTwoCopies) {
  // A single pending DoubleX never pairs with itself, so it is trivially
  // a left mover in isolation.
  Program P;
  P.addAction(Action("Main", 0, Action::alwaysEnabled(),
                     [](const Store &G, const std::vector<Value> &) {
                       return std::vector<Transition>{Transition(G)};
                     }));
  P.addAction(makeDoubleX());
  PaMultiset Single;
  Single.insert(PendingAsync("DoubleX", {}));
  std::vector<Configuration> U{Configuration(bagStore({}, 1), Single)};
  EXPECT_TRUE(
      checkLeftMover(Symbol::get("DoubleX"), P.action("DoubleX"), P, U)
          .ok());
  // With two copies pending, the self-pair is checked (and passes: an
  // action always commutes with itself here).
  PaMultiset Two = Single;
  Two.insert(PendingAsync("DoubleX", {}));
  std::vector<Configuration> U2{Configuration(bagStore({}, 1), Two)};
  EXPECT_TRUE(
      checkLeftMover(Symbol::get("DoubleX"), P.action("DoubleX"), P, U2)
          .ok());
}
