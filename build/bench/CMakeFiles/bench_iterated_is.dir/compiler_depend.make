# Empty compiler generated dependencies file for bench_iterated_is.
# This may be replaced when dependencies are built.
