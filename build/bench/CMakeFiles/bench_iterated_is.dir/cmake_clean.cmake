file(REMOVE_RECURSE
  "CMakeFiles/bench_iterated_is.dir/bench_iterated_is.cpp.o"
  "CMakeFiles/bench_iterated_is.dir/bench_iterated_is.cpp.o.d"
  "bench_iterated_is"
  "bench_iterated_is.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_iterated_is.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
