file(REMOVE_RECURSE
  "CMakeFiles/bench_invariant_complexity.dir/bench_invariant_complexity.cpp.o"
  "CMakeFiles/bench_invariant_complexity.dir/bench_invariant_complexity.cpp.o.d"
  "bench_invariant_complexity"
  "bench_invariant_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_invariant_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
