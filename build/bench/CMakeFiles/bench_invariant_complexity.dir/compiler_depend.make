# Empty compiler generated dependencies file for bench_invariant_complexity.
# This may be replaced when dependencies are built.
