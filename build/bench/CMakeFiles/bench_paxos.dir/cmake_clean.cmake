file(REMOVE_RECURSE
  "CMakeFiles/bench_paxos.dir/bench_paxos.cpp.o"
  "CMakeFiles/bench_paxos.dir/bench_paxos.cpp.o.d"
  "bench_paxos"
  "bench_paxos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_paxos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
