# Empty dependencies file for bench_paxos.
# This may be replaced when dependencies are built.
