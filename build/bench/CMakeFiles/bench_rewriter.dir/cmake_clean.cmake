file(REMOVE_RECURSE
  "CMakeFiles/bench_rewriter.dir/bench_rewriter.cpp.o"
  "CMakeFiles/bench_rewriter.dir/bench_rewriter.cpp.o.d"
  "bench_rewriter"
  "bench_rewriter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rewriter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
