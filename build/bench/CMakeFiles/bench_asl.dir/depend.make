# Empty dependencies file for bench_asl.
# This may be replaced when dependencies are built.
