file(REMOVE_RECURSE
  "CMakeFiles/bench_asl.dir/bench_asl.cpp.o"
  "CMakeFiles/bench_asl.dir/bench_asl.cpp.o.d"
  "bench_asl"
  "bench_asl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_asl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
