# Empty dependencies file for isq_bench_support.
# This may be replaced when dependencies are built.
