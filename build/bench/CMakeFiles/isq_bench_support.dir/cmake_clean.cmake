file(REMOVE_RECURSE
  "CMakeFiles/isq_bench_support.dir/Table1.cpp.o"
  "CMakeFiles/isq_bench_support.dir/Table1.cpp.o.d"
  "libisq_bench_support.a"
  "libisq_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isq_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
