file(REMOVE_RECURSE
  "libisq_bench_support.a"
)
