file(REMOVE_RECURSE
  "CMakeFiles/bench_movers.dir/bench_movers.cpp.o"
  "CMakeFiles/bench_movers.dir/bench_movers.cpp.o.d"
  "bench_movers"
  "bench_movers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_movers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
