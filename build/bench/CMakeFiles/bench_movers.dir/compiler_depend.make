# Empty compiler generated dependencies file for bench_movers.
# This may be replaced when dependencies are built.
