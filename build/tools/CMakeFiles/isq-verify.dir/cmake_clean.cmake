file(REMOVE_RECURSE
  "CMakeFiles/isq-verify.dir/isq-verify.cpp.o"
  "CMakeFiles/isq-verify.dir/isq-verify.cpp.o.d"
  "isq-verify"
  "isq-verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isq-verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
