# Empty dependencies file for isq-verify.
# This may be replaced when dependencies are built.
