# Empty compiler generated dependencies file for nbuyer_test.
# This may be replaced when dependencies are built.
