file(REMOVE_RECURSE
  "CMakeFiles/nbuyer_test.dir/nbuyer_test.cpp.o"
  "CMakeFiles/nbuyer_test.dir/nbuyer_test.cpp.o.d"
  "nbuyer_test"
  "nbuyer_test.pdb"
  "nbuyer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbuyer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
