# Empty compiler generated dependencies file for movers_test.
# This may be replaced when dependencies are built.
