file(REMOVE_RECURSE
  "CMakeFiles/movers_test.dir/movers_test.cpp.o"
  "CMakeFiles/movers_test.dir/movers_test.cpp.o.d"
  "movers_test"
  "movers_test.pdb"
  "movers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
