file(REMOVE_RECURSE
  "CMakeFiles/asl_integration_test.dir/asl_integration_test.cpp.o"
  "CMakeFiles/asl_integration_test.dir/asl_integration_test.cpp.o.d"
  "asl_integration_test"
  "asl_integration_test.pdb"
  "asl_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asl_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
