# Empty dependencies file for asl_integration_test.
# This may be replaced when dependencies are built.
