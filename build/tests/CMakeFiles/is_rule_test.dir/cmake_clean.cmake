file(REMOVE_RECURSE
  "CMakeFiles/is_rule_test.dir/is_rule_test.cpp.o"
  "CMakeFiles/is_rule_test.dir/is_rule_test.cpp.o.d"
  "is_rule_test"
  "is_rule_test.pdb"
  "is_rule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/is_rule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
