# Empty compiler generated dependencies file for is_rule_test.
# This may be replaced when dependencies are built.
