file(REMOVE_RECURSE
  "CMakeFiles/chang_roberts_test.dir/chang_roberts_test.cpp.o"
  "CMakeFiles/chang_roberts_test.dir/chang_roberts_test.cpp.o.d"
  "chang_roberts_test"
  "chang_roberts_test.pdb"
  "chang_roberts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chang_roberts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
