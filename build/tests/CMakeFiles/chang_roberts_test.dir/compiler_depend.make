# Empty compiler generated dependencies file for chang_roberts_test.
# This may be replaced when dependencies are built.
