# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for chang_roberts_test.
