# Empty compiler generated dependencies file for asl_eval_test.
# This may be replaced when dependencies are built.
