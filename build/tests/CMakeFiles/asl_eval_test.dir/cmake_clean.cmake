file(REMOVE_RECURSE
  "CMakeFiles/asl_eval_test.dir/asl_eval_test.cpp.o"
  "CMakeFiles/asl_eval_test.dir/asl_eval_test.cpp.o.d"
  "asl_eval_test"
  "asl_eval_test.pdb"
  "asl_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asl_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
