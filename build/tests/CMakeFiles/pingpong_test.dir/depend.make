# Empty dependencies file for pingpong_test.
# This may be replaced when dependencies are built.
