file(REMOVE_RECURSE
  "CMakeFiles/producer_consumer_test.dir/producer_consumer_test.cpp.o"
  "CMakeFiles/producer_consumer_test.dir/producer_consumer_test.cpp.o.d"
  "producer_consumer_test"
  "producer_consumer_test.pdb"
  "producer_consumer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/producer_consumer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
