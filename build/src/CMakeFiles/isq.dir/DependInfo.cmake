
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/driver/VerifyDriver.cpp" "src/CMakeFiles/isq.dir/driver/VerifyDriver.cpp.o" "gcc" "src/CMakeFiles/isq.dir/driver/VerifyDriver.cpp.o.d"
  "/root/repo/src/explorer/Explorer.cpp" "src/CMakeFiles/isq.dir/explorer/Explorer.cpp.o" "gcc" "src/CMakeFiles/isq.dir/explorer/Explorer.cpp.o.d"
  "/root/repo/src/explorer/Trace.cpp" "src/CMakeFiles/isq.dir/explorer/Trace.cpp.o" "gcc" "src/CMakeFiles/isq.dir/explorer/Trace.cpp.o.d"
  "/root/repo/src/is/ISApplication.cpp" "src/CMakeFiles/isq.dir/is/ISApplication.cpp.o" "gcc" "src/CMakeFiles/isq.dir/is/ISApplication.cpp.o.d"
  "/root/repo/src/is/ISCheck.cpp" "src/CMakeFiles/isq.dir/is/ISCheck.cpp.o" "gcc" "src/CMakeFiles/isq.dir/is/ISCheck.cpp.o.d"
  "/root/repo/src/is/Measure.cpp" "src/CMakeFiles/isq.dir/is/Measure.cpp.o" "gcc" "src/CMakeFiles/isq.dir/is/Measure.cpp.o.d"
  "/root/repo/src/is/Rewriter.cpp" "src/CMakeFiles/isq.dir/is/Rewriter.cpp.o" "gcc" "src/CMakeFiles/isq.dir/is/Rewriter.cpp.o.d"
  "/root/repo/src/is/Sequentialize.cpp" "src/CMakeFiles/isq.dir/is/Sequentialize.cpp.o" "gcc" "src/CMakeFiles/isq.dir/is/Sequentialize.cpp.o.d"
  "/root/repo/src/lang/Ast.cpp" "src/CMakeFiles/isq.dir/lang/Ast.cpp.o" "gcc" "src/CMakeFiles/isq.dir/lang/Ast.cpp.o.d"
  "/root/repo/src/lang/Compile.cpp" "src/CMakeFiles/isq.dir/lang/Compile.cpp.o" "gcc" "src/CMakeFiles/isq.dir/lang/Compile.cpp.o.d"
  "/root/repo/src/lang/Eval.cpp" "src/CMakeFiles/isq.dir/lang/Eval.cpp.o" "gcc" "src/CMakeFiles/isq.dir/lang/Eval.cpp.o.d"
  "/root/repo/src/lang/Lexer.cpp" "src/CMakeFiles/isq.dir/lang/Lexer.cpp.o" "gcc" "src/CMakeFiles/isq.dir/lang/Lexer.cpp.o.d"
  "/root/repo/src/lang/Parser.cpp" "src/CMakeFiles/isq.dir/lang/Parser.cpp.o" "gcc" "src/CMakeFiles/isq.dir/lang/Parser.cpp.o.d"
  "/root/repo/src/lang/Printer.cpp" "src/CMakeFiles/isq.dir/lang/Printer.cpp.o" "gcc" "src/CMakeFiles/isq.dir/lang/Printer.cpp.o.d"
  "/root/repo/src/lang/TypeCheck.cpp" "src/CMakeFiles/isq.dir/lang/TypeCheck.cpp.o" "gcc" "src/CMakeFiles/isq.dir/lang/TypeCheck.cpp.o.d"
  "/root/repo/src/movers/MoverCheck.cpp" "src/CMakeFiles/isq.dir/movers/MoverCheck.cpp.o" "gcc" "src/CMakeFiles/isq.dir/movers/MoverCheck.cpp.o.d"
  "/root/repo/src/protocols/Broadcast.cpp" "src/CMakeFiles/isq.dir/protocols/Broadcast.cpp.o" "gcc" "src/CMakeFiles/isq.dir/protocols/Broadcast.cpp.o.d"
  "/root/repo/src/protocols/ChangRoberts.cpp" "src/CMakeFiles/isq.dir/protocols/ChangRoberts.cpp.o" "gcc" "src/CMakeFiles/isq.dir/protocols/ChangRoberts.cpp.o.d"
  "/root/repo/src/protocols/FineGrained.cpp" "src/CMakeFiles/isq.dir/protocols/FineGrained.cpp.o" "gcc" "src/CMakeFiles/isq.dir/protocols/FineGrained.cpp.o.d"
  "/root/repo/src/protocols/NBuyer.cpp" "src/CMakeFiles/isq.dir/protocols/NBuyer.cpp.o" "gcc" "src/CMakeFiles/isq.dir/protocols/NBuyer.cpp.o.d"
  "/root/repo/src/protocols/Pathological.cpp" "src/CMakeFiles/isq.dir/protocols/Pathological.cpp.o" "gcc" "src/CMakeFiles/isq.dir/protocols/Pathological.cpp.o.d"
  "/root/repo/src/protocols/Paxos.cpp" "src/CMakeFiles/isq.dir/protocols/Paxos.cpp.o" "gcc" "src/CMakeFiles/isq.dir/protocols/Paxos.cpp.o.d"
  "/root/repo/src/protocols/PingPong.cpp" "src/CMakeFiles/isq.dir/protocols/PingPong.cpp.o" "gcc" "src/CMakeFiles/isq.dir/protocols/PingPong.cpp.o.d"
  "/root/repo/src/protocols/ProducerConsumer.cpp" "src/CMakeFiles/isq.dir/protocols/ProducerConsumer.cpp.o" "gcc" "src/CMakeFiles/isq.dir/protocols/ProducerConsumer.cpp.o.d"
  "/root/repo/src/protocols/ScheduleInvariant.cpp" "src/CMakeFiles/isq.dir/protocols/ScheduleInvariant.cpp.o" "gcc" "src/CMakeFiles/isq.dir/protocols/ScheduleInvariant.cpp.o.d"
  "/root/repo/src/protocols/TwoPhaseCommit.cpp" "src/CMakeFiles/isq.dir/protocols/TwoPhaseCommit.cpp.o" "gcc" "src/CMakeFiles/isq.dir/protocols/TwoPhaseCommit.cpp.o.d"
  "/root/repo/src/reduction/Reduction.cpp" "src/CMakeFiles/isq.dir/reduction/Reduction.cpp.o" "gcc" "src/CMakeFiles/isq.dir/reduction/Reduction.cpp.o.d"
  "/root/repo/src/refine/Refinement.cpp" "src/CMakeFiles/isq.dir/refine/Refinement.cpp.o" "gcc" "src/CMakeFiles/isq.dir/refine/Refinement.cpp.o.d"
  "/root/repo/src/semantics/Action.cpp" "src/CMakeFiles/isq.dir/semantics/Action.cpp.o" "gcc" "src/CMakeFiles/isq.dir/semantics/Action.cpp.o.d"
  "/root/repo/src/semantics/Configuration.cpp" "src/CMakeFiles/isq.dir/semantics/Configuration.cpp.o" "gcc" "src/CMakeFiles/isq.dir/semantics/Configuration.cpp.o.d"
  "/root/repo/src/semantics/PendingAsync.cpp" "src/CMakeFiles/isq.dir/semantics/PendingAsync.cpp.o" "gcc" "src/CMakeFiles/isq.dir/semantics/PendingAsync.cpp.o.d"
  "/root/repo/src/semantics/Program.cpp" "src/CMakeFiles/isq.dir/semantics/Program.cpp.o" "gcc" "src/CMakeFiles/isq.dir/semantics/Program.cpp.o.d"
  "/root/repo/src/semantics/Store.cpp" "src/CMakeFiles/isq.dir/semantics/Store.cpp.o" "gcc" "src/CMakeFiles/isq.dir/semantics/Store.cpp.o.d"
  "/root/repo/src/semantics/Value.cpp" "src/CMakeFiles/isq.dir/semantics/Value.cpp.o" "gcc" "src/CMakeFiles/isq.dir/semantics/Value.cpp.o.d"
  "/root/repo/src/support/Format.cpp" "src/CMakeFiles/isq.dir/support/Format.cpp.o" "gcc" "src/CMakeFiles/isq.dir/support/Format.cpp.o.d"
  "/root/repo/src/support/Symbol.cpp" "src/CMakeFiles/isq.dir/support/Symbol.cpp.o" "gcc" "src/CMakeFiles/isq.dir/support/Symbol.cpp.o.d"
  "/root/repo/src/support/Timer.cpp" "src/CMakeFiles/isq.dir/support/Timer.cpp.o" "gcc" "src/CMakeFiles/isq.dir/support/Timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
