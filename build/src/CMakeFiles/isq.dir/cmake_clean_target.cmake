file(REMOVE_RECURSE
  "libisq.a"
)
