# Empty dependencies file for isq.
# This may be replaced when dependencies are built.
