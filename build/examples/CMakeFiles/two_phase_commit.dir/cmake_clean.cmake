file(REMOVE_RECURSE
  "CMakeFiles/two_phase_commit.dir/two_phase_commit.cpp.o"
  "CMakeFiles/two_phase_commit.dir/two_phase_commit.cpp.o.d"
  "two_phase_commit"
  "two_phase_commit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_phase_commit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
