# Empty compiler generated dependencies file for two_phase_commit.
# This may be replaced when dependencies are built.
