# Empty dependencies file for paxos_consensus.
# This may be replaced when dependencies are built.
