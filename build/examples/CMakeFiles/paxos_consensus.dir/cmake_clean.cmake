file(REMOVE_RECURSE
  "CMakeFiles/paxos_consensus.dir/paxos_consensus.cpp.o"
  "CMakeFiles/paxos_consensus.dir/paxos_consensus.cpp.o.d"
  "paxos_consensus"
  "paxos_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paxos_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
