file(REMOVE_RECURSE
  "CMakeFiles/figure2_trace.dir/figure2_trace.cpp.o"
  "CMakeFiles/figure2_trace.dir/figure2_trace.cpp.o.d"
  "figure2_trace"
  "figure2_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure2_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
