file(REMOVE_RECURSE
  "CMakeFiles/asl_frontend.dir/asl_frontend.cpp.o"
  "CMakeFiles/asl_frontend.dir/asl_frontend.cpp.o.d"
  "asl_frontend"
  "asl_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asl_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
