# Empty dependencies file for asl_frontend.
# This may be replaced when dependencies are built.
